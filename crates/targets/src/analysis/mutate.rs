//! Seeded invariant-breaking mutations — the test harness for the
//! [verifier](mod@crate::analysis::verify)'s rejection power.
//!
//! Each [`MutationKind`] applies one minimal, targeted edit that genuinely
//! breaks a specific IR invariant (never an edit that could accidentally
//! produce another valid program): the contract is that
//! [`verify`](crate::analysis::verify::verify) under
//! [`Mode::Ssa`](crate::analysis::verify::Mode::Ssa) must reject **every** mutant this
//! module produces. A mutation kind that does not apply to a given program
//! (no calls to corrupt, no skips to invert) produces no mutant for it; the
//! corpus-wide lint (`lint_ir`) additionally asserts that every kind fires
//! on *some* corpus program, so no rule goes untested.
//!
//! Mutation sites are chosen with a seeded [SplitMix64] generator so runs
//! are reproducible and CI failures can be replayed locally from the
//! reported seed.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::compile::{Instr, Program};

/// The invariant-breaking edits the harness knows, each matched to the
/// verifier rule expected to reject it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MutationKind {
    /// An instruction reads its own destination (`operand-order`).
    OperandSelfRead,
    /// An operand register beyond `n_regs` (`operand-bounds`).
    OperandOutOfBounds,
    /// An operand referencing a later instruction's destination
    /// (`use-before-def`).
    ForwardOperand,
    /// Two instructions writing the same register (`write-once`).
    DuplicateDst,
    /// An instruction overwriting a constant slot (`const-written`).
    DstIntoConst,
    /// An instruction overwriting a variable slot (`var-written`).
    DstIntoVar,
    /// A result register beyond `n_regs` (`result-bounds`).
    ResultOutOfBounds,
    /// A constant slot beyond `n_regs` (`const-bounds`).
    ConstRegOutOfBounds,
    /// A variable slot beyond `n_regs` (`var-bounds`).
    VarRegOutOfBounds,
    /// A variable sharing a constant's register (`slot-overlap`).
    VarAliasesConst,
    /// An argument-pool entry beyond `n_regs` (`operand-bounds`).
    ArgPoolRegOutOfBounds,
    /// A call's argument range overrunning the pool (`call-pool`).
    CallRangeOverrun,
    /// A call arity beyond the evaluator maximum (`call-arity`).
    CallArityOverflow,
    /// A skip range with `start >= end` (`skip-shape`).
    SkipInverted,
    /// A skip range stretched over a following instruction whose value
    /// escapes (`skip-privacy` / `skip-result` / `skip-shape`).
    SkipLeak,
    /// A skip condition register beyond `n_regs` (`skip-cond-bounds`).
    SkipCondOutOfBounds,
    /// Two skip ranges out of outer-first order (`skip-order`).
    UnsortedSkips,
}

impl MutationKind {
    /// Every kind, for coverage accounting.
    pub const ALL: &'static [MutationKind] = &[
        MutationKind::OperandSelfRead,
        MutationKind::OperandOutOfBounds,
        MutationKind::ForwardOperand,
        MutationKind::DuplicateDst,
        MutationKind::DstIntoConst,
        MutationKind::DstIntoVar,
        MutationKind::ResultOutOfBounds,
        MutationKind::ConstRegOutOfBounds,
        MutationKind::VarRegOutOfBounds,
        MutationKind::VarAliasesConst,
        MutationKind::ArgPoolRegOutOfBounds,
        MutationKind::CallRangeOverrun,
        MutationKind::CallArityOverflow,
        MutationKind::SkipInverted,
        MutationKind::SkipLeak,
        MutationKind::SkipCondOutOfBounds,
        MutationKind::UnsortedSkips,
    ];
}

/// One mutated program and the edit that produced it.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// The invariant-breaking edit applied.
    pub kind: MutationKind,
    /// The mutated program (the input is never modified).
    pub program: Program,
    /// What exactly was edited, for failure reports.
    pub description: String,
}

/// SplitMix64: tiny, seedable, and good enough to scatter mutation sites.
/// Local on purpose — `targets` sits below the crates that own shared RNG
/// utilities, and the harness only needs site selection.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish index into `0..n` (`n > 0`).
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Sets the first operand-like register of `instr` (for plain calls: its
/// first pool entry) to `reg`. Returns a short description of the edit.
fn corrupt_first_operand(instr: &mut Instr, arg_pool: &mut [u32], reg: u32) -> String {
    match instr {
        Instr::Un { a, .. }
        | Instr::Round32 { a, .. }
        | Instr::CallUn { a, .. }
        | Instr::Bin { a, .. }
        | Instr::CallBin { a, .. }
        | Instr::Tern { a, .. } => {
            let was = *a;
            *a = reg;
            format!("operand a: r{was} -> r{reg}")
        }
        Instr::Select { c, .. } => {
            let was = *c;
            *c = reg;
            format!("select condition: r{was} -> r{reg}")
        }
        Instr::Call { first, .. } => {
            let was = arg_pool[*first as usize];
            arg_pool[*first as usize] = reg;
            format!("arg_pool[{first}]: r{was} -> r{reg}")
        }
    }
}

/// Overwrites the destination field of `instr`.
fn set_dst(instr: &mut Instr, reg: u32) {
    match instr {
        Instr::Un { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Tern { dst, .. }
        | Instr::Round32 { dst, .. }
        | Instr::Select { dst, .. }
        | Instr::Call { dst, .. }
        | Instr::CallUn { dst, .. }
        | Instr::CallBin { dst, .. } => *dst = reg,
    }
}

/// Whether stretching skip `k` of `program` one instruction further is
/// *observable* — i.e. guaranteed to trip a verifier rule. The swallowed
/// instruction's value must escape the extended range: be the program
/// result, or be read past it other than through the one exempt select
/// position. (An unobservable stretch could produce a program that is
/// genuinely still valid, which the harness must never emit.)
fn skip_leak_applies(program: &Program, k: usize) -> bool {
    let sk = &program.skips[k];
    let (old_end, new_end) = (sk.end as usize, sk.end as usize + 1);
    if new_end > program.instrs.len() {
        return true; // out of bounds: `skip-shape` fires
    }
    let swallowed = program.instrs[old_end].dst();
    if swallowed == program.result {
        return true; // `skip-result` fires
    }
    for instr in &program.instrs[new_end..] {
        match *instr {
            Instr::Select { c, t, e, .. } => {
                if c == swallowed {
                    return true; // condition position is never exempt
                }
                let dead_arm = if sk.dead_when { e } else { t };
                let exempt = c == sk.cond && swallowed == dead_arm;
                if (t == swallowed || e == swallowed) && !exempt {
                    return true;
                }
            }
            _ => {
                let mut read = false;
                instr.for_each_read(&program.arg_pool, |reg| read |= reg == swallowed);
                if read {
                    return true; // `skip-privacy` fires
                }
            }
        }
    }
    false
}

/// Produces one mutant per applicable [`MutationKind`], choosing mutation
/// sites with the seeded generator. Every returned program violates at least
/// one invariant; the verifier must reject them all.
pub fn seeded_mutants(program: &Program, seed: u64) -> Vec<Mutant> {
    let mut rng = SplitMix64(seed);
    let mut out = Vec::new();
    let n = program.instrs.len();
    let n_regs = program.n_regs as u32;
    let mut emit = |kind: MutationKind, edit: &dyn Fn(&mut Program) -> String| {
        let mut p = program.clone();
        let description = edit(&mut p);
        out.push(Mutant {
            kind,
            program: p,
            description,
        });
    };

    if n > 0 {
        let i = rng.pick(n);
        emit(MutationKind::OperandSelfRead, &|p: &mut Program| {
            let dst = p.instrs[i].dst();
            let (instrs, pool) = (&mut p.instrs, &mut p.arg_pool);
            format!(
                "instr {i}: {}",
                corrupt_first_operand(&mut instrs[i], pool, dst)
            )
        });
        let i = rng.pick(n);
        emit(MutationKind::OperandOutOfBounds, &|p: &mut Program| {
            let (instrs, pool) = (&mut p.instrs, &mut p.arg_pool);
            format!(
                "instr {i}: {}",
                corrupt_first_operand(&mut instrs[i], pool, n_regs + 7)
            )
        });
    }
    if n >= 2 {
        let i = rng.pick(n - 1);
        emit(MutationKind::ForwardOperand, &|p: &mut Program| {
            let later = p.instrs[n - 1].dst();
            let (instrs, pool) = (&mut p.instrs, &mut p.arg_pool);
            format!(
                "instr {i}: {}",
                corrupt_first_operand(&mut instrs[i], pool, later)
            )
        });
        let i = 1 + rng.pick(n - 1);
        emit(MutationKind::DuplicateDst, &|p: &mut Program| {
            let prev = p.instrs[i - 1].dst();
            set_dst(&mut p.instrs[i], prev);
            format!("instr {i}: dst -> r{prev} (same as instr {})", i - 1)
        });
    }
    if n > 0 && !program.consts.is_empty() {
        let i = rng.pick(n);
        let c = rng.pick(program.consts.len());
        emit(MutationKind::DstIntoConst, &|p: &mut Program| {
            let reg = p.consts[c].0;
            set_dst(&mut p.instrs[i], reg);
            format!("instr {i}: dst -> constant slot r{reg}")
        });
    }
    if n > 0 && !program.vars.is_empty() {
        let i = rng.pick(n);
        let v = rng.pick(program.vars.len());
        emit(MutationKind::DstIntoVar, &|p: &mut Program| {
            let reg = p.vars[v].0;
            set_dst(&mut p.instrs[i], reg);
            format!("instr {i}: dst -> variable slot r{reg}")
        });
    }
    emit(MutationKind::ResultOutOfBounds, &|p: &mut Program| {
        p.result = n_regs + 1;
        format!("result -> r{} (out of bounds)", n_regs + 1)
    });
    if !program.consts.is_empty() {
        let c = rng.pick(program.consts.len());
        emit(MutationKind::ConstRegOutOfBounds, &|p: &mut Program| {
            p.consts[c].0 = n_regs + 2;
            format!("constant {c} slot -> r{} (out of bounds)", n_regs + 2)
        });
    }
    if !program.vars.is_empty() {
        let v = rng.pick(program.vars.len());
        emit(MutationKind::VarRegOutOfBounds, &|p: &mut Program| {
            p.vars[v].0 = n_regs + 3;
            format!("variable {v} slot -> r{} (out of bounds)", n_regs + 3)
        });
        if !program.consts.is_empty() {
            let c = rng.pick(program.consts.len());
            emit(MutationKind::VarAliasesConst, &|p: &mut Program| {
                let reg = p.consts[c].0;
                p.vars[v].0 = reg;
                format!("variable {v} slot -> r{reg} (aliases constant {c})")
            });
        }
    }
    let calls: Vec<usize> = program
        .instrs
        .iter()
        .enumerate()
        .filter(|(_, instr)| matches!(instr, Instr::Call { .. }))
        .map(|(i, _)| i)
        .collect();
    if !calls.is_empty() {
        let i = calls[rng.pick(calls.len())];
        emit(MutationKind::ArgPoolRegOutOfBounds, &|p: &mut Program| {
            let Instr::Call { first, .. } = p.instrs[i] else {
                unreachable!()
            };
            p.arg_pool[first as usize] = n_regs + 4;
            format!("arg_pool[{first}] -> r{} (out of bounds)", n_regs + 4)
        });
        let i = calls[rng.pick(calls.len())];
        emit(MutationKind::CallRangeOverrun, &|p: &mut Program| {
            let pool_len = p.arg_pool.len() as u32;
            let Instr::Call { first, .. } = &mut p.instrs[i] else {
                unreachable!()
            };
            *first = pool_len;
            format!("instr {i}: call first -> {pool_len} (overruns the pool)")
        });
        let i = calls[rng.pick(calls.len())];
        emit(MutationKind::CallArityOverflow, &|p: &mut Program| {
            let Instr::Call { arity, .. } = &mut p.instrs[i] else {
                unreachable!()
            };
            *arity = crate::compile::MAX_CALL_ARITY as u32 + 1;
            format!("instr {i}: call arity -> {} (over the maximum)", *arity)
        });
    }
    if !program.skips.is_empty() {
        let k = rng.pick(program.skips.len());
        emit(MutationKind::SkipInverted, &|p: &mut Program| {
            let sk = &mut p.skips[k];
            std::mem::swap(&mut sk.start, &mut sk.end);
            format!("skip {k}: start/end swapped to [{}, {})", sk.start, sk.end)
        });
        let leaky: Vec<usize> = (0..program.skips.len())
            .filter(|&k| skip_leak_applies(program, k))
            .collect();
        if !leaky.is_empty() {
            let k = leaky[rng.pick(leaky.len())];
            emit(MutationKind::SkipLeak, &|p: &mut Program| {
                p.skips[k].end += 1;
                format!(
                    "skip {k}: end stretched to {} (swallowed value escapes)",
                    p.skips[k].end
                )
            });
        }
        let k = rng.pick(program.skips.len());
        emit(MutationKind::SkipCondOutOfBounds, &|p: &mut Program| {
            p.skips[k].cond = n_regs + 5;
            format!("skip {k}: condition -> r{} (out of bounds)", n_regs + 5)
        });
    }
    if program.skips.len() >= 2 {
        let key = |sk: &crate::compile::SkipRange| (sk.start, std::cmp::Reverse(sk.end));
        let pairs: Vec<usize> = (1..program.skips.len())
            .filter(|&k| key(&program.skips[k - 1]) != key(&program.skips[k]))
            .collect();
        if !pairs.is_empty() {
            let k = pairs[rng.pick(pairs.len())];
            emit(MutationKind::UnsortedSkips, &|p: &mut Program| {
                p.skips.swap(k - 1, k);
                format!("skips {} and {k} swapped out of order", k - 1)
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify::{verify, Mode};
    use crate::expr::FloatExpr;
    use crate::operator::Operator;
    use crate::target::Target;
    use fpcore::FpType::Binary64;
    use fpcore::{RealOp, Symbol};
    use std::collections::HashSet;

    /// A program with a select (hence skips), calls, constants, and several
    /// instructions — applicable to most mutation kinds.
    fn rich_program() -> Program {
        fn host_exp(args: &[f64]) -> f64 {
            args[0].exp()
        }
        let t = Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::native("exp.f64", &[Binary64], Binary64, "(exp a0)", 40.0, host_exp),
        ]);
        let add = t.find_operator("+.f64").unwrap();
        let exp = t.find_operator("exp.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let expr = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, Binary64)),
            )),
            Box::new(FloatExpr::Op(exp, vec![x.clone()])),
            Box::new(FloatExpr::Op(add, vec![x.clone(), x])),
        );
        crate::compile::compile(&t, &expr)
    }

    #[test]
    fn every_mutant_is_rejected() {
        let p = rich_program();
        for seed in 0..16 {
            for mutant in seeded_mutants(&p, seed) {
                let violations = verify(&mutant.program, Mode::Ssa);
                assert!(
                    !violations.is_empty(),
                    "seed {seed}: {:?} survived ({})",
                    mutant.kind,
                    mutant.description
                );
            }
        }
    }

    #[test]
    fn rich_programs_exercise_most_kinds() {
        let p = rich_program();
        let kinds: HashSet<MutationKind> =
            seeded_mutants(&p, 7).into_iter().map(|m| m.kind).collect();
        assert!(
            kinds.len() >= 10,
            "only {} kinds applied: {kinds:?}",
            kinds.len()
        );
    }

    #[test]
    fn mutants_are_reproducible() {
        let p = rich_program();
        let a: Vec<String> = seeded_mutants(&p, 42)
            .into_iter()
            .map(|m| m.description)
            .collect();
        let b: Vec<String> = seeded_mutants(&p, 42)
            .into_iter()
            .map(|m| m.description)
            .collect();
        assert_eq!(a, b);
    }
}
