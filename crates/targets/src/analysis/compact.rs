//! Liveness-driven register compaction: renumbers registers so the program
//! occupies the smallest slab the allocation discipline allows.
//!
//! The register slab is the block engine's per-worker working set — `n_regs ×
//! block_width` doubles ([`crate::BlockRegs`]) — so slab height directly
//! controls cache footprint. Fresh compiles use one register per value (SSA);
//! once a value's last read has executed, its register can be reused.
//!
//! The allocator assigns, in order:
//!
//! * constants → registers `0..C` (original order). Constant registers are
//!   **pinned**: the engines broadcast constants once per register file and
//!   never rewrite them, so a constant's slot may never be reused;
//! * variables → registers `C..C+V`. Variable rows are reloaded per
//!   block/point by every engine, so a variable's register returns to the
//!   free pool after the variable's last read;
//! * each instruction destination → the **smallest free register strictly
//!   greater than every (renamed) operand**, or a fresh register if none is
//!   free. The strict inequality preserves the `dst > operands` discipline
//!   the block engine's slab split (`split_at_mut(dst * width)`) depends on.
//!   Operand registers that die at the instruction are freed only *after*
//!   its destination is chosen, so a destination never aliases an operand.
//!
//! **Bit-identity sketch.** The rewrite is a pure renaming: instruction
//! order, operations, and value flow are unchanged, and liveness guarantees
//! no register is reused while its old value can still be read — including
//! reads by a select's *dead* arm operand, because liveness is computed on
//! the linear program (see [`crate::analysis::liveness`](mod@crate::analysis::liveness)). Skip ranges stay
//! sound for the same reason: a register written inside a range and renamed
//! is only ever read after the range by the owning select's dead-arm operand
//! (the privacy invariant), and its renamed slot cannot be reallocated
//! before that read. The corpus-wide differential suite asserts identity
//! across all three engines at several block widths.
//!
//! The output is no longer write-once (registers are deliberately reused),
//! so it verifies under [`Mode::Executable`](crate::analysis::verify::Mode),
//! not `Mode::Ssa`.

use crate::analysis::liveness::liveness;
use crate::compile::{Instr, Program, SkipRange};
use std::collections::BTreeSet;
use std::ops::Bound;

/// Size accounting for [`compact_registers`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompactStats {
    /// Register-slab height before compaction.
    pub regs_before: usize,
    /// Register-slab height after compaction.
    pub regs_after: usize,
}

/// Renumbers registers to minimize slab height (see the module docs for the
/// allocation discipline and the bit-identity argument).
pub fn compact_registers(program: &Program) -> (Program, CompactStats) {
    let lv = liveness(program);
    const UNMAPPED: u32 = u32::MAX;
    let mut map = vec![UNMAPPED; program.num_regs()];
    let mut next: u32 = 0;
    let mut consts = Vec::with_capacity(program.consts.len());
    let mut vars = Vec::with_capacity(program.vars.len());
    let mut const_regs = crate::analysis::dataflow::RegSet::new(program.num_regs());
    for &(reg, value) in &program.consts {
        map[reg as usize] = next;
        const_regs.insert(reg);
        consts.push((next, value));
        next += 1;
    }
    let mut free: BTreeSet<u32> = BTreeSet::new();
    for &(reg, sym) in &program.vars {
        map[reg as usize] = next;
        vars.push((next, sym));
        // A variable nothing reads frees its slot immediately: the engines
        // still load the variable row, but any instruction may overwrite it.
        if !lv.live[0].contains(reg) {
            free.insert(next);
        }
        next += 1;
    }

    let mut instrs = Vec::with_capacity(program.instrs.len());
    let mut arg_pool = vec![0u32; program.arg_pool.len()];
    for (i, instr) in program.instrs.iter().enumerate() {
        // Rename the operands (their defining registers are already mapped:
        // SSA defined-before-use) and find the allocation floor.
        let mut max_read: Option<u32> = None;
        let mut renamed = *instr;
        {
            let mut rd = |reg: &mut u32| {
                let new = map[*reg as usize];
                debug_assert_ne!(new, UNMAPPED, "operand read before definition");
                max_read = Some(max_read.map_or(new, |m| m.max(new)));
                *reg = new;
            };
            match &mut renamed {
                Instr::Un { a, .. } | Instr::Round32 { a, .. } | Instr::CallUn { a, .. } => rd(a),
                Instr::Bin { a, b, .. } | Instr::CallBin { a, b, .. } => {
                    rd(a);
                    rd(b);
                }
                Instr::Tern { a, b, c, .. } => {
                    rd(a);
                    rd(b);
                    rd(c);
                }
                Instr::Select { c, t, e, .. } => {
                    rd(c);
                    rd(t);
                    rd(e);
                }
                Instr::Call { first, arity, .. } => {
                    let range = *first as usize..(*first + *arity) as usize;
                    for (slot, &orig) in arg_pool[range.clone()]
                        .iter_mut()
                        .zip(&program.arg_pool[range])
                    {
                        let mut reg = orig;
                        rd(&mut reg);
                        *slot = reg;
                    }
                }
            }
        }
        // Smallest free register strictly above every operand, else fresh.
        let floor = match max_read {
            Some(m) => Bound::Excluded(m),
            None => Bound::Unbounded,
        };
        let dst = match free.range((floor, Bound::Unbounded)).next().copied() {
            Some(reg) => {
                free.remove(&reg);
                reg
            }
            None => {
                let reg = next;
                next += 1;
                reg
            }
        };
        let old_dst = instr.dst();
        map[old_dst as usize] = dst;
        match &mut renamed {
            Instr::Un { dst: d, .. }
            | Instr::Bin { dst: d, .. }
            | Instr::Tern { dst: d, .. }
            | Instr::Round32 { dst: d, .. }
            | Instr::Select { dst: d, .. }
            | Instr::Call { dst: d, .. }
            | Instr::CallUn { dst: d, .. }
            | Instr::CallBin { dst: d, .. } => *d = dst,
        }
        instrs.push(renamed);
        // Free registers whose last read was this instruction (they are in
        // `live` before it but not after), plus the destination itself when
        // the instruction is dead. Constants stay pinned.
        for reg in lv.live[i].iter() {
            if !lv.live[i + 1].contains(reg) && !const_regs.contains(reg) {
                free.insert(map[reg as usize]);
            }
        }
        if !lv.live[i + 1].contains(old_dst) {
            free.insert(dst);
        }
    }

    let skips: Vec<SkipRange> = program
        .skips
        .iter()
        .map(|sk| SkipRange {
            start: sk.start,
            end: sk.end,
            cond: map[sk.cond as usize],
            dead_when: sk.dead_when,
        })
        .collect();
    let compacted = Program {
        n_regs: next as usize,
        consts,
        vars,
        instrs,
        arg_pool,
        skips,
        result: map[program.result as usize],
    };
    let stats = CompactStats {
        regs_before: program.num_regs(),
        regs_after: compacted.num_regs(),
    };
    (compacted, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify::{verify, Mode};
    use crate::interp::SliceEnv;
    use fpcore::{RealOp, Symbol};

    /// Two independent chains joined at the top, hand-compiled in SSA:
    /// `(x+c)*(x+c') ... ` shaped so the second chain can reuse the first
    /// chain's retired registers.
    ///
    /// `r2 = x+c; r3 = r2*r2; r4 = x-c; r5 = r4*r4; r6 = r3+r5`.
    fn diamond() -> Program {
        Program {
            n_regs: 7,
            consts: vec![(0, 1.5)],
            vars: vec![(1, Symbol::new("x"))],
            instrs: vec![
                Instr::Bin {
                    op: RealOp::Add,
                    a: 1,
                    b: 0,
                    dst: 2,
                },
                Instr::Bin {
                    op: RealOp::Mul,
                    a: 2,
                    b: 2,
                    dst: 3,
                },
                Instr::Bin {
                    op: RealOp::Sub,
                    a: 1,
                    b: 0,
                    dst: 4,
                },
                Instr::Bin {
                    op: RealOp::Mul,
                    a: 4,
                    b: 4,
                    dst: 5,
                },
                Instr::Bin {
                    op: RealOp::Add,
                    a: 3,
                    b: 5,
                    dst: 6,
                },
            ],
            arg_pool: vec![],
            skips: vec![],
            result: 6,
        }
    }

    #[test]
    fn independent_subtrees_share_registers() {
        let p = diamond();
        let (q, stats) = compact_registers(&p);
        assert_eq!(stats.regs_before, 7);
        // The second chain's temporary reuses the first chain's retired slot
        // (a dependency chain itself cannot shrink: every destination must
        // stay strictly above the operand it consumes).
        assert!(stats.regs_after < stats.regs_before, "{stats:?}");
        assert!(
            verify(&q, Mode::Executable).is_empty(),
            "{:?}",
            verify(&q, Mode::Executable)
        );
        let syms = [Symbol::new("x")];
        for x in [0.0, 1.0, -3.5, f64::NAN, f64::INFINITY] {
            let vals = [x];
            let env = SliceEnv::new(&syms, &vals);
            assert_eq!(p.eval_in(&env).to_bits(), q.eval_in(&env).to_bits());
        }
    }

    #[test]
    fn destinations_stay_strictly_above_operands() {
        let (q, _) = compact_registers(&diamond());
        for instr in &q.instrs {
            assert!(instr.reads_below(instr.dst(), &q.arg_pool));
        }
    }

    #[test]
    fn constants_are_never_reused() {
        let (q, _) = compact_registers(&diamond());
        let const_reg = q.consts[0].0;
        for instr in &q.instrs {
            assert_ne!(instr.dst(), const_reg, "constant slot was overwritten");
        }
    }

    #[test]
    fn compaction_is_idempotent() {
        let (q, first) = compact_registers(&diamond());
        let (_, second) = compact_registers(&q);
        assert_eq!(first.regs_after, second.regs_after);
    }
}
