//! Forward interval/NaN analysis from sampler domains.
//!
//! Each register gets a [`ValueFact`]: a closed interval that is a *superset*
//! of every non-NaN value the register can hold, plus a `may_nan` flag. The
//! transfer functions are deliberately conservative — endpoints are widened
//! outward by several ULPs so that the few-ULP deviations of the `vecmath`
//! kernels (and host libm differences) can never make a fact wrong — and any
//! operator without a precise transfer falls back to ⊤ (`[-∞, +∞]`, may be
//! NaN).
//!
//! The analysis is **advisory only**. Its two products annotate, never
//! rewrite:
//!
//! * [`IntervalAnalysis::uniform_selects`] — select instructions whose
//!   condition provably takes one arm on the whole domain. Truthiness
//!   follows the engines (`c != 0.0`, so a NaN condition takes the *then*
//!   arm): a select always takes *then* iff its condition interval excludes
//!   zero (NaN is nonzero too), and always takes *else* iff the interval is
//!   exactly `[0, 0]` **and** the condition cannot be NaN.
//! * [`IntervalAnalysis::safe_calls`] — transcendental call sites whose
//!   argument facts prove every input stays on the matched `vecmath`
//!   kernel's special-case-free [`SafeRange`](vecmath::SafeRange), i.e. the
//!   kernel's special-case blend path is statically dead there. Kernels are
//!   matched by sweep-pointer identity first, then by the calling operator's
//!   base name (how the `c99`-style targets route through `fpcore::eval`);
//!   with the `libm-calls` feature the annotation still describes the
//!   vecmath kernel, not the libm path actually run.
//!
//! Evaluation semantics never depend on these annotations, so bit identity
//! across the three engines is untouched by anything this module computes.

use crate::analysis::dataflow::{solve, Analysis};
use crate::compile::{Instr, Program};
use crate::operator::Impl;
use crate::target::Target;
use fpcore::{Expr, RealOp, Symbol};

/// What is known about one register at one program point: a closed interval
/// covering every non-NaN value it can hold, and whether it can be NaN.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ValueFact {
    /// Lower interval endpoint (never NaN).
    pub lo: f64,
    /// Upper interval endpoint (never NaN).
    pub hi: f64,
    /// Whether the register can hold NaN.
    pub may_nan: bool,
}

impl ValueFact {
    /// The no-information fact.
    pub const TOP: ValueFact = ValueFact {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        may_nan: true,
    };

    /// The fact for a known constant.
    pub fn exact(v: f64) -> ValueFact {
        if v.is_nan() {
            // An interval must have non-NaN endpoints; a NaN constant is
            // "no non-NaN values, may be NaN", which TOP safely covers.
            ValueFact::TOP
        } else {
            ValueFact {
                lo: v,
                hi: v,
                may_nan: false,
            }
        }
    }

    /// A NaN-free interval fact (sanitized: NaN endpoints become ⊤).
    pub fn range(lo: f64, hi: f64) -> ValueFact {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            ValueFact::TOP
        } else {
            ValueFact {
                lo,
                hi,
                may_nan: false,
            }
        }
    }

    /// True when the fact proves the register is always a non-NaN value
    /// inside `[lo, hi]`.
    pub fn within(&self, lo: f64, hi: f64) -> bool {
        !self.may_nan && lo <= self.lo && self.hi <= hi
    }

    /// The union of two facts (used for select results).
    fn hull(a: ValueFact, b: ValueFact) -> ValueFact {
        ValueFact {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
            may_nan: a.may_nan || b.may_nan,
        }
    }

    fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && 0.0 <= self.hi
    }

    fn has_inf(&self) -> bool {
        self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY
    }

    /// Truthiness of a condition register under the engines' `c != 0.0`
    /// test: `Some(true)` = always takes *then*, `Some(false)` = always
    /// takes *else*, `None` = unknown.
    pub fn uniform_truth(&self) -> Option<bool> {
        if !self.contains_zero() {
            // Every value (NaN included) is nonzero.
            Some(true)
        } else if self.lo == 0.0 && self.hi == 0.0 && !self.may_nan {
            Some(false)
        } else {
            None
        }
    }
}

/// Extra outward ULP steps applied to every inexact endpoint, absorbing the
/// few-ULP error of the vecmath kernels and host-libm variation.
const SLACK_ULPS: u32 = 8;

/// Widens `[lo, hi]` outward by [`SLACK_ULPS`]; NaN endpoints become ⊤.
fn widened(lo: f64, hi: f64, may_nan: bool) -> ValueFact {
    if lo.is_nan() || hi.is_nan() {
        return ValueFact::TOP;
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..SLACK_ULPS {
        lo = lo.next_down();
        hi = hi.next_up();
    }
    ValueFact { lo, hi, may_nan }
}

/// A fact whose interval endpoints are exact (comparisons, min/max, floor).
fn precise(lo: f64, hi: f64, may_nan: bool) -> ValueFact {
    if lo.is_nan() || hi.is_nan() {
        ValueFact::TOP
    } else {
        ValueFact { lo, hi, may_nan }
    }
}

/// A monotone-increasing unary function applied to an interval.
fn monotone(f: fn(f64) -> f64, a: ValueFact, may_nan: bool) -> ValueFact {
    widened(f(a.lo), f(a.hi), may_nan)
}

fn boolean(can_false: bool, can_true: bool) -> ValueFact {
    precise(
        if can_false { 0.0 } else { 1.0 },
        if can_true { 1.0 } else { 0.0 },
        false,
    )
}

fn transfer_un(op: RealOp, a: ValueFact) -> ValueFact {
    match op {
        RealOp::Neg => precise(-a.hi, -a.lo, a.may_nan),
        RealOp::Fabs => {
            if a.lo >= 0.0 {
                a
            } else if a.hi <= 0.0 {
                precise(-a.hi, -a.lo, a.may_nan)
            } else {
                precise(0.0, (-a.lo).max(a.hi), a.may_nan)
            }
        }
        RealOp::Sqrt => widened(
            a.lo.max(0.0).sqrt(),
            a.hi.max(0.0).sqrt(),
            a.may_nan || a.lo < 0.0,
        ),
        RealOp::Cbrt => monotone(f64::cbrt, a, a.may_nan),
        RealOp::Floor => precise(a.lo.floor(), a.hi.floor(), a.may_nan),
        RealOp::Ceil => precise(a.lo.ceil(), a.hi.ceil(), a.may_nan),
        RealOp::Round => precise(a.lo.round(), a.hi.round(), a.may_nan),
        RealOp::Trunc => precise(a.lo.trunc(), a.hi.trunc(), a.may_nan),
        RealOp::Exp => monotone(f64::exp, a, a.may_nan),
        RealOp::Exp2 => monotone(f64::exp2, a, a.may_nan),
        RealOp::Expm1 => monotone(f64::exp_m1, a, a.may_nan),
        RealOp::Log => monotone(|x| x.max(0.0).ln(), a, a.may_nan || a.lo < 0.0),
        RealOp::Log2 => monotone(|x| x.max(0.0).log2(), a, a.may_nan || a.lo < 0.0),
        RealOp::Log10 => monotone(|x| x.max(0.0).log10(), a, a.may_nan || a.lo < 0.0),
        RealOp::Log1p => monotone(|x| x.max(-1.0).ln_1p(), a, a.may_nan || a.lo < -1.0),
        RealOp::Sin | RealOp::Cos => widened(-1.0, 1.0, a.may_nan || a.has_inf()),
        RealOp::Asin => widened(
            -std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_2,
            a.may_nan || a.lo < -1.0 || a.hi > 1.0,
        ),
        RealOp::Acos => widened(
            0.0,
            std::f64::consts::PI,
            a.may_nan || a.lo < -1.0 || a.hi > 1.0,
        ),
        RealOp::Atan => monotone(f64::atan, a, a.may_nan),
        RealOp::Sinh => monotone(f64::sinh, a, a.may_nan),
        RealOp::Cosh => {
            // Symmetric, minimized at zero: cosh(|a|) over the magnitude range.
            let (minmag, maxmag) = if a.contains_zero() {
                (0.0, (-a.lo).max(a.hi))
            } else if a.lo > 0.0 {
                (a.lo, a.hi)
            } else {
                (-a.hi, -a.lo)
            };
            widened(minmag.cosh(), maxmag.cosh(), a.may_nan)
        }
        RealOp::Tanh => monotone(f64::tanh, a, a.may_nan),
        RealOp::Asinh => monotone(f64::asinh, a, a.may_nan),
        RealOp::Acosh => monotone(|x| x.max(1.0).acosh(), a, a.may_nan || a.lo < 1.0),
        RealOp::Atanh => monotone(
            |x| x.clamp(-1.0, 1.0).atanh(),
            a,
            a.may_nan || a.lo < -1.0 || a.hi > 1.0,
        ),
        RealOp::Not => boolean(
            !(a.lo == 0.0 && a.hi == 0.0) || a.may_nan, // can be nonzero → not → 0
            a.contains_zero(),                          // can be zero → not → 1
        ),
        _ => ValueFact::TOP,
    }
}

fn mul_fact(a: ValueFact, b: ValueFact) -> ValueFact {
    // 0 × ∞ is the only way multiplication invents a NaN.
    let zero_inf = (a.contains_zero() && b.has_inf()) || (b.contains_zero() && a.has_inf());
    if zero_inf {
        return ValueFact {
            may_nan: true,
            ..ValueFact::TOP
        };
    }
    let corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    widened(lo, hi, a.may_nan || b.may_nan)
}

fn add_fact(a: ValueFact, b: ValueFact) -> ValueFact {
    let inf_minus_inf = (a.hi == f64::INFINITY && b.lo == f64::NEG_INFINITY)
        || (a.lo == f64::NEG_INFINITY && b.hi == f64::INFINITY);
    if inf_minus_inf {
        return ValueFact {
            may_nan: true,
            ..ValueFact::TOP
        };
    }
    widened(a.lo + b.lo, a.hi + b.hi, a.may_nan || b.may_nan)
}

fn transfer_bin(op: RealOp, a: ValueFact, b: ValueFact) -> ValueFact {
    let nan = a.may_nan || b.may_nan;
    match op {
        RealOp::Add => add_fact(a, b),
        RealOp::Sub => add_fact(a, precise(-b.hi, -b.lo, b.may_nan)),
        RealOp::Mul => mul_fact(a, b),
        RealOp::Div => {
            if b.contains_zero() || (a.has_inf() && b.has_inf()) {
                ValueFact::TOP
            } else {
                let corners = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
                let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                widened(lo, hi, nan)
            }
        }
        // minNum semantics (`f64::min`/`f64::max`): NaN on one side yields
        // the other side's value, so the result can only be NaN when both
        // can — but the interval must then cover both sides.
        RealOp::Fmin => {
            if nan {
                ValueFact {
                    may_nan: a.may_nan && b.may_nan,
                    ..ValueFact::hull(a, b)
                }
            } else {
                precise(a.lo.min(b.lo), a.hi.min(b.hi), false)
            }
        }
        RealOp::Fmax => {
            if nan {
                ValueFact {
                    may_nan: a.may_nan && b.may_nan,
                    ..ValueFact::hull(a, b)
                }
            } else {
                precise(a.lo.max(b.lo), a.hi.max(b.hi), false)
            }
        }
        RealOp::Hypot => {
            let maxmag = (-a.lo).max(a.hi).hypot((-b.lo).max(b.hi));
            widened(0.0, maxmag, nan)
        }
        RealOp::Fdim => widened(0.0, (a.hi - b.lo).max(0.0), nan),
        RealOp::Copysign => {
            let maxmag = (-a.lo).max(a.hi).max(0.0);
            precise(-maxmag, maxmag, a.may_nan)
        }
        RealOp::Atan2 => widened(-std::f64::consts::PI, std::f64::consts::PI, nan),
        RealOp::Lt => boolean(a.hi >= b.lo || nan, a.lo < b.hi),
        RealOp::Gt => boolean(a.lo <= b.hi || nan, a.hi > b.lo),
        RealOp::Le => boolean(a.hi > b.lo || nan, a.lo <= b.hi),
        RealOp::Ge => boolean(a.lo < b.hi || nan, a.hi >= b.lo),
        RealOp::Eq => boolean(
            a.lo != a.hi || b.lo != b.hi || a.lo != b.lo || nan,
            a.lo <= b.hi && b.lo <= a.hi,
        ),
        RealOp::Ne => boolean(
            a.lo <= b.hi && b.lo <= a.hi,
            a.lo != a.hi || b.lo != b.hi || a.lo != b.lo || nan,
        ),
        RealOp::And => {
            let t = |x: ValueFact| !(x.lo == 0.0 && x.hi == 0.0) || x.may_nan;
            let f = |x: ValueFact| x.contains_zero();
            boolean(f(a) || f(b), t(a) && t(b))
        }
        RealOp::Or => {
            let t = |x: ValueFact| !(x.lo == 0.0 && x.hi == 0.0) || x.may_nan;
            let f = |x: ValueFact| x.contains_zero();
            boolean(f(a) && f(b), t(a) || t(b))
        }
        _ => ValueFact::TOP, // Pow, Fmod: special-case-rich; no precise transfer
    }
}

/// Rounds an interval outward through binary32 (the `Round32` instruction).
fn round32_fact(a: ValueFact) -> ValueFact {
    let down = |x: f64| {
        let v = x as f32;
        if f64::from(v) > x {
            f64::from(v.next_down())
        } else {
            f64::from(v)
        }
    };
    let up = |x: f64| {
        let v = x as f32;
        if f64::from(v) < x {
            f64::from(v.next_up())
        } else {
            f64::from(v)
        }
    };
    precise(down(a.lo), up(a.hi), a.may_nan)
}

struct IntervalDataflow<'a> {
    domains: &'a [(Symbol, (f64, f64))],
}

impl Analysis for IntervalDataflow<'_> {
    type Fact = Vec<ValueFact>;
    const BACKWARD: bool = false;

    fn boundary(&self, program: &Program) -> Vec<ValueFact> {
        let mut facts = vec![ValueFact::TOP; program.num_regs()];
        for &(reg, value) in &program.consts {
            facts[reg as usize] = ValueFact::exact(value);
        }
        for &(reg, sym) in &program.vars {
            if let Some(&(_, (lo, hi))) = self.domains.iter().find(|(s, _)| *s == sym) {
                facts[reg as usize] = ValueFact::range(lo, hi);
            }
        }
        facts
    }

    fn transfer(&self, program: &Program, idx: usize, before: &Vec<ValueFact>) -> Vec<ValueFact> {
        let mut after = before.clone();
        let g = |reg: u32| before[reg as usize];
        let instr = &program.instrs[idx];
        after[instr.dst() as usize] = match *instr {
            Instr::Un { op, a, .. } => transfer_un(op, g(a)),
            Instr::Bin { op, a, b, .. } => transfer_bin(op, g(a), g(b)),
            Instr::Tern { op, a, b, c, .. } => match op {
                RealOp::Fma => add_fact(mul_fact(g(a), g(b)), g(c)),
                _ => ValueFact::TOP,
            },
            Instr::Round32 { a, .. } => round32_fact(g(a)),
            Instr::Select { c, t, e, .. } => match g(c).uniform_truth() {
                Some(true) => g(t),
                Some(false) => g(e),
                None => ValueFact::hull(g(t), g(e)),
            },
            // Calls execute arbitrary target code; no transfer is attempted.
            Instr::Call { .. } | Instr::CallUn { .. } | Instr::CallBin { .. } => ValueFact::TOP,
        };
        after
    }
}

/// A select whose condition is provably uniform over the analyzed domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UniformSelect {
    /// Instruction index of the select.
    pub at: usize,
    /// `true` when the *then* arm is always taken.
    pub takes_then: bool,
}

/// A transcendental call site whose inputs provably stay on the matched
/// vecmath kernel's special-case-free range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SafeCall {
    /// Instruction index of the call.
    pub at: usize,
    /// The matched kernel's name (`"exp"`, `"pow"`, ...).
    pub kernel: &'static str,
}

/// The solved interval facts plus the two advisory annotations they support.
#[derive(Clone, Debug)]
pub struct IntervalAnalysis {
    /// `facts[i][r]` is the fact for register `r` before instruction `i`
    /// (`facts[n]` after the last instruction).
    pub facts: Vec<Vec<ValueFact>>,
    /// Selects with a provably-uniform condition.
    pub uniform_selects: Vec<UniformSelect>,
    /// Calls that can statically skip the kernel's special-case blend.
    pub safe_calls: Vec<SafeCall>,
}

/// The base of a target operator name: `exp.f64` → `exp`.
fn base_name(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Finds the vecmath kernel a unary call dispatches to, by sweep-pointer
/// identity or (for targets that route through `fpcore::eval`) by the
/// calling operator's base name.
fn kernel1_for_call(
    target: Option<&Target>,
    fun: fn(&[f64]) -> f64,
    sweep: fn(&mut [f64], &[f64]),
) -> Option<&'static vecmath::Kernel1> {
    vecmath::kernel1_for_sweep(sweep).or_else(|| {
        let target = target?;
        let op = target.operators.iter().find(
            |op| matches!(op.implementation, Impl::Native(f) if f as usize == fun as usize),
        )?;
        vecmath::kernel1_by_name(base_name(&op.name))
    })
}

fn kernel2_for_call(
    target: Option<&Target>,
    fun: fn(&[f64]) -> f64,
    sweep: fn(&mut [f64], &[f64], &[f64]),
) -> Option<&'static vecmath::Kernel2> {
    vecmath::kernel2_for_sweep(sweep).or_else(|| {
        let target = target?;
        let op = target.operators.iter().find(
            |op| matches!(op.implementation, Impl::Native(f) if f as usize == fun as usize),
        )?;
        vecmath::kernel2_by_name(base_name(&op.name))
    })
}

/// Runs the interval analysis over `program` with the given per-variable
/// sampler domains (`[(symbol, (lo, hi))]`; variables without a domain get
/// ⊤). `target` enables name-based kernel matching for [`SafeCall`]s.
pub fn interval_analysis(
    program: &Program,
    target: Option<&Target>,
    domains: &[(Symbol, (f64, f64))],
) -> IntervalAnalysis {
    let facts = solve(&IntervalDataflow { domains }, program);
    let mut uniform_selects = Vec::new();
    let mut safe_calls = Vec::new();
    for (i, instr) in program.instrs.iter().enumerate() {
        let g = |reg: u32| facts[i][reg as usize];
        match *instr {
            Instr::Select { c, .. } => {
                if let Some(takes_then) = g(c).uniform_truth() {
                    uniform_selects.push(UniformSelect { at: i, takes_then });
                }
            }
            Instr::CallUn { fun, sweep, a, .. } => {
                if let Some(k) = kernel1_for_call(target, fun, sweep) {
                    let fa = g(a);
                    if !fa.may_nan && k.safe.contains_interval(fa.lo, fa.hi) {
                        safe_calls.push(SafeCall {
                            at: i,
                            kernel: k.name,
                        });
                    }
                }
            }
            Instr::CallBin {
                fun, sweep, a, b, ..
            } => {
                if let Some(k) = kernel2_for_call(target, fun, sweep) {
                    let (fa, fb) = (g(a), g(b));
                    if !fa.may_nan
                        && !fb.may_nan
                        && k.safe_a.contains_interval(fa.lo, fa.hi)
                        && k.safe_b.contains_interval(fb.lo, fb.hi)
                    {
                        safe_calls.push(SafeCall {
                            at: i,
                            kernel: k.name,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    IntervalAnalysis {
        facts,
        uniform_selects,
        safe_calls,
    }
}

/// Extracts per-variable domains from an FPCore precondition — a conjunction
/// of binary comparisons between a variable and a constant, the shape the
/// benchmark corpus uses — in the `[(symbol, (lo, hi))]` form
/// [`interval_analysis`] takes. Anything else is ignored (the variable keeps
/// no domain, i.e. ⊤), which is always sound. Contradictory bounds are
/// dropped: a domain that never samples supports no claim.
pub fn domains_from_pre(pre: Option<&Expr>) -> Vec<(Symbol, (f64, f64))> {
    let mut bounds: Vec<(Symbol, (f64, f64))> = Vec::new();
    fn tighten(bounds: &mut Vec<(Symbol, (f64, f64))>, var: Symbol, lo: f64, hi: f64) {
        match bounds.iter_mut().find(|(s, _)| *s == var) {
            Some((_, range)) => {
                range.0 = range.0.max(lo);
                range.1 = range.1.min(hi);
            }
            None => bounds.push((var, (lo, hi))),
        }
    }
    fn walk(bounds: &mut Vec<(Symbol, (f64, f64))>, expr: &Expr) {
        match expr {
            Expr::Op(RealOp::And, args) => args.iter().for_each(|a| walk(bounds, a)),
            Expr::Op(op, args) if args.len() == 2 => {
                let inf = f64::INFINITY;
                // A closed superset interval is sound for strict comparisons.
                match (op, &args[0], &args[1]) {
                    (RealOp::Lt | RealOp::Le, Expr::Var(v), Expr::Num(c)) => {
                        tighten(bounds, *v, -inf, c.to_f64());
                    }
                    (RealOp::Gt | RealOp::Ge, Expr::Var(v), Expr::Num(c)) => {
                        tighten(bounds, *v, c.to_f64(), inf);
                    }
                    (RealOp::Lt | RealOp::Le, Expr::Num(c), Expr::Var(v)) => {
                        tighten(bounds, *v, c.to_f64(), inf);
                    }
                    (RealOp::Gt | RealOp::Ge, Expr::Num(c), Expr::Var(v)) => {
                        tighten(bounds, *v, -inf, c.to_f64());
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    if let Some(pre) = pre {
        walk(&mut bounds, pre);
    }
    bounds.retain(|(_, (lo, hi))| lo <= hi);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::expr::FloatExpr;
    use crate::operator::Operator;
    use fpcore::FpType::Binary64;

    fn target() -> Target {
        Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::emulated("exp.f64", &[Binary64], Binary64, "(exp a0)", 40.0),
        ])
    }

    fn x() -> FloatExpr {
        FloatExpr::Var(Symbol::new("x"), Binary64)
    }

    #[test]
    fn constants_and_domains_propagate() {
        let t = target();
        let add = t.find_operator("+.f64").unwrap();
        let expr = FloatExpr::Op(add, vec![x(), FloatExpr::literal(2.0, Binary64)]);
        let p = compile(&t, &expr);
        let ia = interval_analysis(&p, Some(&t), &[(Symbol::new("x"), (1.0, 10.0))]);
        let result = ia.facts.last().unwrap()[p.instrs.last().unwrap().dst() as usize];
        assert!(!result.may_nan);
        assert!(result.lo <= 3.0 && result.lo > 2.9, "{result:?}");
        assert!(result.hi >= 12.0 && result.hi < 12.1, "{result:?}");
    }

    #[test]
    fn uniform_select_on_a_positive_domain() {
        let t = target();
        let exp = t.find_operator("exp.f64").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        // if x < 0 { exp(x) } else { x + x } with x ∈ [1, 10]: always else.
        let expr = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x()),
                Box::new(FloatExpr::literal(0.0, Binary64)),
            )),
            Box::new(FloatExpr::Op(exp, vec![x()])),
            Box::new(FloatExpr::Op(add, vec![x(), x()])),
        );
        let p = compile(&t, &expr);
        let ia = interval_analysis(&p, Some(&t), &[(Symbol::new("x"), (1.0, 10.0))]);
        assert_eq!(ia.uniform_selects.len(), 1, "{ia:?}");
        assert!(!ia.uniform_selects[0].takes_then);
        // With an unbounded domain nothing is provable.
        let ia = interval_analysis(&p, Some(&t), &[]);
        assert!(ia.uniform_selects.is_empty());
    }

    #[test]
    fn nan_blocks_uniformity_proofs() {
        // x/x has an unbounded, possibly-NaN fact even on a positive domain
        // … so use 0/0-capable division explicitly: the condition (x/x) < 2
        // cannot be proved uniform because x/x may be NaN at x = ±∞ … but we
        // test the fact-level primitive directly, which is what the select
        // check uses.
        let f = ValueFact {
            lo: 1.0,
            hi: 1.0,
            may_nan: true,
        };
        // NaN is truthy under `c != 0.0`, so a may-NaN [1,1] is still
        // provably-then; a may-NaN [0,0] proves nothing.
        assert_eq!(f.uniform_truth(), Some(true));
        let z = ValueFact {
            lo: 0.0,
            hi: 0.0,
            may_nan: true,
        };
        assert_eq!(z.uniform_truth(), None);
        assert_eq!(ValueFact::exact(0.0).uniform_truth(), Some(false));
    }

    #[test]
    fn comparison_facts_are_nan_sound() {
        // a < b with a ∈ [5,6], b ∈ [0,1]: always false even if NaN-capable.
        let a = ValueFact {
            lo: 5.0,
            hi: 6.0,
            may_nan: true,
        };
        let b = ValueFact::range(0.0, 1.0);
        assert_eq!(transfer_bin(RealOp::Lt, a, b), ValueFact::range(0.0, 0.0));
        // a > b can be proved true only when neither side can be NaN.
        assert_eq!(
            transfer_bin(RealOp::Gt, a, b),
            ValueFact::range(0.0, 1.0),
            "may-NaN operands block an always-true comparison"
        );
        let a2 = ValueFact::range(5.0, 6.0);
        assert_eq!(transfer_bin(RealOp::Gt, a2, b), ValueFact::range(1.0, 1.0));
    }

    #[test]
    fn fmin_fmax_follow_minnum_semantics() {
        let a = ValueFact {
            lo: 0.0,
            hi: 1.0,
            may_nan: true,
        };
        let b = ValueFact::range(10.0, 20.0);
        let f = transfer_bin(RealOp::Fmin, a, b);
        // NaN on one side yields the other side, so the result cannot be NaN
        // … but it can be any of b's values.
        assert!(!f.may_nan);
        assert!(f.lo <= 0.0 && f.hi >= 20.0, "{f:?}");
    }

    #[test]
    fn interval_transfers_are_outward_sound() {
        let a = ValueFact::range(1.0, 2.0);
        let e = transfer_un(RealOp::Exp, a);
        assert!(!e.may_nan);
        assert!(e.lo < 1.0f64.exp() && e.hi > 2.0f64.exp());
        let l = transfer_un(RealOp::Log, ValueFact::range(-1.0, 4.0));
        assert!(l.may_nan, "log of a possibly-negative value may be NaN");
        let d = transfer_bin(
            RealOp::Div,
            ValueFact::range(1.0, 2.0),
            ValueFact::range(-1.0, 1.0),
        );
        assert_eq!(d, ValueFact::TOP, "division by a zero-containing interval");
    }

    #[test]
    fn safe_calls_match_by_operator_name() {
        // A fake native exp routed like c99 would: the sweep is not a
        // vecmath pointer, so matching falls back to the operator name.
        fn fake_exp(args: &[f64]) -> f64 {
            args[0].exp()
        }
        fn fake_sweep(out: &mut [f64], a: &[f64]) {
            for (o, &x) in out.iter_mut().zip(a) {
                *o = x.exp();
            }
        }
        let t = Target::new("t", "test").with_operators(vec![Operator::native(
            "exp.f64",
            &[Binary64],
            Binary64,
            "(exp a0)",
            40.0,
            fake_exp,
        )
        .with_sweep(crate::operator::SweepImpl::Un(fake_sweep))]);
        let exp = t.find_operator("exp.f64").unwrap();
        let p = compile(&t, &FloatExpr::Op(exp, vec![x()]));
        let ia = interval_analysis(&p, Some(&t), &[(Symbol::new("x"), (-1.0, 1.0))]);
        assert_eq!(ia.safe_calls.len(), 1, "{ia:?}");
        assert_eq!(ia.safe_calls[0].kernel, "exp");
        // Out of the kernel's safe range: no annotation.
        let ia = interval_analysis(&p, Some(&t), &[(Symbol::new("x"), (-1.0e4, 1.0e4))]);
        assert!(ia.safe_calls.is_empty());
    }
}
