//! Target descriptions: a named collection of operators plus cost-model details.

use crate::operator::{OpId, Operator};
use fpcore::FpType;
use std::fmt;

/// How the cost model accounts for conditionals (paper Section 4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IfCostStyle {
    /// Scalar execution: pay for the predicate plus the *more expensive* branch.
    Scalar,
    /// Vector/masked execution (AVX blend, `numpy.where`): pay for the predicate
    /// plus *both* branches.
    Vector,
}

/// A compilation target: the set of available floating-point operators and the
/// information needed to rank programs by estimated speed.
#[derive(Clone, Debug)]
pub struct Target {
    /// Target name (e.g. `avx`, `julia`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Available operators.
    pub operators: Vec<Operator>,
    /// Conditional cost style.
    pub if_cost_style: IfCostStyle,
    /// Fixed overhead added for each conditional.
    pub if_base_cost: f64,
    /// Cost of materializing a literal.
    pub literal_cost: f64,
    /// Cost of referencing a variable.
    pub variable_cost: f64,
    /// Where the cost numbers come from (e.g. `auto-tune`, `Fog [20]`).
    pub cost_source: String,
}

impl Target {
    /// Creates an empty target with scalar conditionals and unit literal costs.
    pub fn new(name: &str, description: &str) -> Target {
        Target {
            name: name.to_owned(),
            description: description.to_owned(),
            operators: Vec::new(),
            if_cost_style: IfCostStyle::Scalar,
            if_base_cost: 1.0,
            literal_cost: 1.0,
            variable_cost: 1.0,
            cost_source: "auto-tune".to_owned(),
        }
    }

    /// Sets the conditional cost style (builder style).
    pub fn with_if_style(mut self, style: IfCostStyle, base_cost: f64) -> Target {
        self.if_cost_style = style;
        self.if_base_cost = base_cost;
        self
    }

    /// Sets literal/variable costs (builder style).
    pub fn with_leaf_costs(mut self, literal: f64, variable: f64) -> Target {
        self.literal_cost = literal;
        self.variable_cost = variable;
        self
    }

    /// Records the provenance of the cost model (builder style).
    pub fn with_cost_source(mut self, source: &str) -> Target {
        self.cost_source = source.to_owned();
        self
    }

    /// Adds an operator, returning its id. Name uniqueness (and the other
    /// target description rules) are checked by
    /// [`crate::analysis::verify_target`] rather than asserted here, so
    /// builders can be checked once when finished.
    pub fn add_operator(&mut self, op: Operator) -> OpId {
        self.operators.push(op);
        OpId(self.operators.len() as u32 - 1)
    }

    /// Adds several operators (builder style).
    pub fn with_operators(mut self, ops: Vec<Operator>) -> Target {
        for op in ops {
            self.add_operator(op);
        }
        self
    }

    /// Imports every operator of another target (paper: "targets can import,
    /// combine, or modify other targets"). Operators with the same name are
    /// replaced by the imported version.
    pub fn import(&mut self, other: &Target) {
        for op in &other.operators {
            match self.find_operator(&op.name) {
                Some(id) => self.operators[id.index()] = op.clone(),
                None => {
                    self.operators.push(op.clone());
                }
            }
        }
    }

    /// The operator with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids are only valid for the target that
    /// produced them).
    pub fn operator(&self, id: OpId) -> &Operator {
        &self.operators[id.index()]
    }

    /// Looks up an operator by name.
    pub fn find_operator(&self, name: &str) -> Option<OpId> {
        self.operators
            .iter()
            .position(|op| op.name == name)
            .map(|i| OpId(i as u32))
    }

    /// A stable 128-bit fingerprint of everything about this target that can
    /// influence a compilation result: the name, every operator (name,
    /// signature, desugaring, cost, native/emulated), and the cost-model
    /// scalars. Two targets with equal fingerprints compile every expression
    /// identically, so the compilation service keys its content-addressed
    /// result cache on this (together with the benchmark, seed, and config —
    /// see `docs/SERVICE.md`).
    ///
    /// Native function *pointers* cannot be hashed portably; a linked
    /// operator is identified by its name plus a `native` tag, which is sound
    /// because operator names name fixed documented semantics (the
    /// sweep/scalar pairing rule already depends on that).
    pub fn fingerprint(&self) -> u128 {
        let mut h = fpcore::hash::ContentHasher::new();
        h.str(&self.name);
        h.u64(self.operators.len() as u64);
        for op in &self.operators {
            h.str(&op.name);
            h.u64(op.arg_types.len() as u64);
            for ty in &op.arg_types {
                h.str(ty.name());
            }
            h.str(op.ret_type.name());
            h.str(&fpcore::to_sexpr(&op.desugaring));
            h.f64(op.cost);
            h.str(if op.is_linked() { "native" } else { "emulated" });
        }
        h.str(match self.if_cost_style {
            IfCostStyle::Scalar => "scalar",
            IfCostStyle::Vector => "vector",
        });
        h.f64(self.if_base_cost);
        h.f64(self.literal_cost);
        h.f64(self.variable_cost);
        h.digest()
    }

    /// All operator ids.
    pub fn operator_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.operators.len()).map(|i| OpId(i as u32))
    }

    /// The operators producing results of the given type.
    pub fn operators_of_type(&self, ty: FpType) -> Vec<OpId> {
        self.operator_ids()
            .filter(|id| self.operator(*id).ret_type == ty)
            .collect()
    }

    /// The numeric types this target supports (those appearing as a return type).
    pub fn supported_types(&self) -> Vec<FpType> {
        let mut tys: Vec<FpType> = self
            .operators
            .iter()
            .map(|o| o.ret_type)
            .filter(|t| t.is_numeric())
            .collect();
        tys.sort();
        tys.dedup();
        tys
    }

    /// Number of operators whose implementation is linked (native) vs emulated.
    pub fn linked_emulated_counts(&self) -> (usize, usize) {
        let linked = self.operators.iter().filter(|o| o.is_linked()).count();
        (linked, self.operators.len() - linked)
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (linked, emulated) = self.linked_emulated_counts();
        write!(
            f,
            "{}: {} operators ({} linked, {} emulated), {:?} conditionals, costs from {}",
            self.name,
            self.operators.len(),
            linked,
            emulated,
            self.if_cost_style,
            self.cost_source
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::FpType::*;

    fn tiny_target() -> Target {
        Target::new("tiny", "test target").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::emulated("*.f64", &[Binary64, Binary64], Binary64, "(* a0 a1)", 1.0),
            Operator::emulated("/.f64", &[Binary64, Binary64], Binary64, "(/ a0 a1)", 4.0),
        ])
    }

    #[test]
    fn lookup_and_ids() {
        let t = tiny_target();
        let div = t.find_operator("/.f64").unwrap();
        assert_eq!(t.operator(div).cost, 4.0);
        assert!(t.find_operator("sin.f64").is_none());
        assert_eq!(t.operator_ids().count(), 3);
        assert_eq!(t.supported_types(), vec![Binary64]);
    }

    #[test]
    fn import_extends_and_overrides() {
        let mut fancy = Target::new("fancy", "extended");
        fancy.import(&tiny_target());
        assert_eq!(fancy.operators.len(), 3);
        // Override division with a cheaper one and add a new operator.
        let cheaper =
            Operator::emulated("/.f64", &[Binary64, Binary64], Binary64, "(/ a0 a1)", 2.0);
        let mut patch = Target::new("patch", "");
        patch.add_operator(cheaper);
        patch.add_operator(Operator::emulated(
            "sqrt.f64",
            &[Binary64],
            Binary64,
            "(sqrt a0)",
            5.0,
        ));
        fancy.import(&patch);
        assert_eq!(fancy.operators.len(), 4);
        assert_eq!(
            fancy.operator(fancy.find_operator("/.f64").unwrap()).cost,
            2.0
        );
    }

    #[test]
    fn builder_options() {
        let t = Target::new("v", "vector target")
            .with_if_style(IfCostStyle::Vector, 2.0)
            .with_leaf_costs(0.5, 0.25)
            .with_cost_source("Fog [20]");
        assert_eq!(t.if_cost_style, IfCostStyle::Vector);
        assert_eq!(t.if_base_cost, 2.0);
        assert_eq!(t.literal_cost, 0.5);
        assert_eq!(t.variable_cost, 0.25);
        assert_eq!(t.cost_source, "Fog [20]");
    }

    #[test]
    fn display_summarizes() {
        let display = tiny_target().to_string();
        assert!(display.contains("tiny"));
        assert!(display.contains("3 operators"));
    }

    #[test]
    fn fingerprints_separate_semantic_changes() {
        let base = tiny_target();
        assert_eq!(base.fingerprint(), tiny_target().fingerprint());
        // The description is cosmetic; the cost model is not.
        let mut cosmetic = tiny_target();
        cosmetic.description = "renamed description".to_owned();
        assert_eq!(base.fingerprint(), cosmetic.fingerprint());
        let mut costlier = tiny_target();
        costlier.literal_cost = 3.5;
        assert_ne!(base.fingerprint(), costlier.fingerprint());
        let mut fewer_ops = tiny_target();
        fewer_ops.operators.pop();
        assert_ne!(base.fingerprint(), fewer_ops.fingerprint());
    }
}
