//! Operator descriptors: the atomic instructions of Chassis' internal IR.
//!
//! Each operator has a name, a type signature, a *desugaring* (the real-number
//! expression it approximates, written over the positional argument symbols
//! returned by [`arg_symbol`]), a scalar cost, and an implementation used when
//! the interpreter executes programs on training points.

use fpcore::{parse_expr, Expr, FpType, Symbol};
use std::fmt;

/// Index of an operator within its [`crate::Target`]'s operator table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpId(pub u32);

impl OpId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The positional argument symbol used in desugarings: `a0`, `a1`, `a2`, ...
///
/// The first few symbols are interned once and cached: this function runs for
/// every argument of every emulated operator the interpreter executes, and
/// formatting plus an interner-mutex round trip per call dominated operator
/// execution itself.
pub fn arg_symbol(i: usize) -> Symbol {
    const CACHED: usize = 8;
    static FIRST: std::sync::OnceLock<[Symbol; CACHED]> = std::sync::OnceLock::new();
    let first = FIRST.get_or_init(|| std::array::from_fn(|k| Symbol::new(&format!("a{k}"))));
    if i < CACHED {
        first[i]
    } else {
        Symbol::new(&format!("a{i}"))
    }
}

/// Zero-allocation [`Bindings`](fpcore::eval::Bindings) view binding `a0..aN`
/// positionally to an argument slice.
struct ArgBindings<'a>(&'a [f64]);

impl fpcore::eval::Bindings for ArgBindings<'_> {
    fn value_of(&self, var: Symbol) -> Option<f64> {
        (0..self.0.len())
            .find(|&i| arg_symbol(i) == var)
            .map(|i| self.0[i])
    }
}

/// How an operator is executed on concrete inputs.
#[derive(Clone, Copy)]
pub enum Impl {
    /// Emulated: the desugaring is evaluated with host double-precision
    /// arithmetic (and rounded to the operator's return type). This models the
    /// paper's "E" targets, whose operators are accurate library functions.
    Emulated,
    /// Linked: a native Rust function emulating the documented accuracy of the
    /// real instruction or library routine (e.g. AVX `rcpps`, vdt `fast_sin`).
    /// This models the paper's "L" targets.
    Native(fn(&[f64]) -> f64),
}

/// A block-wide (lane-sweep) form of a native operator, used by the block
/// evaluator to process a whole lane slice per instruction dispatch instead
/// of calling the scalar function once per lane.
///
/// **Contract:** the sweep must execute the *identical* per-lane operation
/// sequence as the operator's scalar [`Impl::Native`] function, so block
/// results stay bit-identical to the scalar engines at every block width
/// (the differential tests assert this corpus-wide). The easiest way to
/// honor the contract is to build both forms from the same
/// `fpcore::eval::apply_op*`/`sweep_op*` routing, which also keeps them in
/// lockstep across the `libm-calls` feature.
#[derive(Clone, Copy)]
pub enum SweepImpl {
    /// `out[i] = f(a[i])` for a unary operator.
    Un(fn(&mut [f64], &[f64])),
    /// `out[i] = f(a[i], b[i])` for a binary operator.
    Bin(fn(&mut [f64], &[f64], &[f64])),
}

impl fmt::Debug for SweepImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepImpl::Un(_) => write!(f, "SweepImpl::Un(..)"),
            SweepImpl::Bin(_) => write!(f, "SweepImpl::Bin(..)"),
        }
    }
}

impl fmt::Debug for Impl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Impl::Emulated => write!(f, "Emulated"),
            Impl::Native(_) => write!(f, "Native(..)"),
        }
    }
}

/// A floating-point operator available on a target.
#[derive(Clone, Debug)]
pub struct Operator {
    /// Target-specific name, e.g. `+.f64`, `rcp.f32`, `log1pmd.f64`.
    pub name: String,
    /// Argument representation types.
    pub arg_types: Vec<FpType>,
    /// Result representation type.
    pub ret_type: FpType,
    /// The real-number expression this operator approximates, over the symbols
    /// `a0`, `a1`, ... (one per argument).
    pub desugaring: Expr,
    /// Scalar cost used by the target cost model (relative units).
    pub cost: f64,
    /// How to execute the operator on concrete values.
    pub implementation: Impl,
    /// Optional block-wide form of a native implementation (see
    /// [`SweepImpl`]'s bit-identity contract). `None` means the block
    /// evaluator calls the scalar function once per lane.
    pub sweep: Option<SweepImpl>,
}

impl Operator {
    /// Creates an emulated operator from a desugaring written as an S-expression
    /// over `a0`, `a1`, ....
    ///
    /// # Panics
    ///
    /// Panics if the desugaring does not parse; this is a programming error in a
    /// target description.
    pub fn emulated(
        name: &str,
        arg_types: &[FpType],
        ret_type: FpType,
        desugaring: &str,
        cost: f64,
    ) -> Operator {
        Operator {
            name: name.to_owned(),
            arg_types: arg_types.to_vec(),
            ret_type,
            desugaring: parse_expr(desugaring)
                .unwrap_or_else(|e| panic!("bad desugaring for {name}: {e}")),
            cost,
            implementation: Impl::Emulated,
            sweep: None,
        }
    }

    /// Attaches a block-wide sweep form to a native operator. The sweep must
    /// honor the [`SweepImpl`] bit-identity contract with the operator's
    /// scalar implementation.
    pub fn with_sweep(mut self, sweep: SweepImpl) -> Operator {
        // Sweep forms pair with native scalar implementations; the rule is
        // enforced by `crate::analysis::verify_target` on the finished target.
        self.sweep = Some(sweep);
        self
    }

    /// Creates a linked (native) operator with an explicit implementation.
    ///
    /// # Panics
    ///
    /// Panics if the desugaring does not parse.
    pub fn native(
        name: &str,
        arg_types: &[FpType],
        ret_type: FpType,
        desugaring: &str,
        cost: f64,
        implementation: fn(&[f64]) -> f64,
    ) -> Operator {
        Operator {
            implementation: Impl::Native(implementation),
            ..Operator::emulated(name, arg_types, ret_type, desugaring, cost)
        }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.arg_types.len()
    }

    /// True if the operator is "linked" (has a native implementation) rather than
    /// emulated — the L/E column of Figure 6.
    pub fn is_linked(&self) -> bool {
        matches!(self.implementation, Impl::Native(_))
    }

    /// Executes the operator on concrete arguments (already rounded to the
    /// operator's argument types), returning a value rounded to the return type.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the operator's arity.
    pub fn execute(&self, args: &[f64]) -> f64 {
        assert_eq!(
            args.len(),
            self.arity(),
            "arity mismatch calling {}",
            self.name
        );
        let raw = match self.implementation {
            Impl::Native(f) => f(args),
            Impl::Emulated => fpcore::eval::eval_f64_in(&self.desugaring, &ArgBindings(args)),
        };
        round_to_type(raw, self.ret_type)
    }

    /// The desugaring with the positional argument symbols replaced by the given
    /// argument expressions.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the operator's arity.
    pub fn instantiate_desugaring(&self, args: &[Expr]) -> Expr {
        assert_eq!(args.len(), self.arity(), "arity mismatch for {}", self.name);
        let mut out = self.desugaring.clone();
        for (i, arg) in args.iter().enumerate() {
            out = out.substitute(arg_symbol(i), arg);
        }
        out
    }
}

/// Rounds a value to the given representation (the identity for binary64).
pub fn round_to_type(x: f64, ty: FpType) -> f64 {
    match ty {
        FpType::Binary64 | FpType::Bool => x,
        FpType::Binary32 => x as f32 as f64,
    }
}

/// Truncates the mantissa of `x`, keeping `bits` significant bits. Used to
/// emulate reduced-accuracy instructions (AVX `rcpps`, vdt `fast_*`).
pub fn truncate_mantissa(x: f64, bits: u32) -> f64 {
    if !x.is_finite() || x == 0.0 || bits >= 53 {
        return x;
    }
    let mask = !((1u64 << (52 - bits)) - 1);
    f64::from_bits(x.to_bits() & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulated_operator_executes_desugaring() {
        let op = Operator::emulated(
            "hypot.f64",
            &[FpType::Binary64, FpType::Binary64],
            FpType::Binary64,
            "(sqrt (+ (* a0 a0) (* a1 a1)))",
            12.0,
        );
        assert_eq!(op.arity(), 2);
        assert!(!op.is_linked());
        assert_eq!(op.execute(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn native_operator_uses_function() {
        fn rcp(args: &[f64]) -> f64 {
            truncate_mantissa(1.0 / args[0], 12)
        }
        let op = Operator::native(
            "rcp.f32",
            &[FpType::Binary32],
            FpType::Binary32,
            "(/ 1 a0)",
            4.0,
            rcp,
        );
        assert!(op.is_linked());
        let approx = op.execute(&[3.0]);
        assert!((approx - 1.0 / 3.0).abs() < 1e-3);
        assert_ne!(
            approx,
            (1.0f32 / 3.0f32) as f64,
            "rcp is deliberately inexact"
        );
    }

    #[test]
    fn binary32_results_are_rounded() {
        let op = Operator::emulated(
            "/.f32",
            &[FpType::Binary32, FpType::Binary32],
            FpType::Binary32,
            "(/ a0 a1)",
            10.0,
        );
        assert_eq!(op.execute(&[1.0, 3.0]), (1.0f32 / 3.0f32) as f64);
    }

    #[test]
    fn desugaring_instantiation() {
        let op = Operator::emulated(
            "log1p.f64",
            &[FpType::Binary64],
            FpType::Binary64,
            "(log (+ 1 a0))",
            30.0,
        );
        let inst = op.instantiate_desugaring(&[fpcore::parse_expr("(* x x)").unwrap()]);
        assert_eq!(inst, fpcore::parse_expr("(log (+ 1 (* x x)))").unwrap());
    }

    #[test]
    fn mantissa_truncation_controls_error() {
        let x = 1.0 / 3.0;
        let coarse = truncate_mantissa(x, 10);
        let fine = truncate_mantissa(x, 40);
        assert!((coarse - x).abs() > (fine - x).abs());
        assert!((coarse - x).abs() / x < 2.0_f64.powi(-10));
        assert_eq!(truncate_mantissa(0.0, 10), 0.0);
        assert_eq!(truncate_mantissa(f64::INFINITY, 10), f64::INFINITY);
        assert_eq!(truncate_mantissa(x, 53), x);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn execute_checks_arity() {
        let op = Operator::emulated(
            "neg.f64",
            &[FpType::Binary64],
            FpType::Binary64,
            "(- a0)",
            1.0,
        );
        op.execute(&[1.0, 2.0]);
    }
}
