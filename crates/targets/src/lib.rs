//! # targets
//!
//! Chassis' target description language (paper Section 4) and the nine built-in
//! targets used in the evaluation (Figure 6), together with everything needed to
//! *execute* and *cost* target-specific floating-point programs:
//!
//! * [`Operator`] — a floating-point instruction with a type signature, a
//!   real-number desugaring, a scalar cost and an implementation,
//! * [`Target`] — a named set of operators plus cost-model details
//!   (scalar/vector conditional style, literal costs); targets can import and
//!   extend one another,
//! * [`FloatExpr`] — target-specific floating-point programs (the compiler's
//!   output language),
//! * [`cost`](costmodel::program_cost) — the target cost model,
//! * [`interp`] — an interpreter for float programs (used to estimate accuracy
//!   and to measure wall-clock run time, standing in for the paper's dynamic
//!   linking of real instruction implementations),
//! * [`mod@compile`] — a bytecode compiler for float programs: one flat
//!   register-machine [`Program`] per candidate, bit-identical to the
//!   interpreter and reused across every sample point (the evaluation hot
//!   path),
//! * [`mod@block`] — structure-of-arrays block execution of compiled
//!   programs: columnar point batches ([`Columns`]) swept one instruction per
//!   *block* of points against a columnar register file, bit-identical to the
//!   scalar engine at every block width,
//! * [`autotune`] — the cost auto-tuner that times each operator in a hot loop,
//! * [`builtin`] — the nine target descriptions: Arith, Arith+FMA, AVX, C99,
//!   Python, Julia, NumPy, vdt, fdlibm,
//! * [`analysis`] — the static-analysis layer over compiled programs: the IR
//!   verifier (run after every compile in debug builds and corpus-wide in
//!   CI), a dataflow framework hosting liveness / dead-code elimination /
//!   register compaction / interval analysis, and the seeded mutation
//!   harness that tests the verifier itself.

pub mod analysis;
pub mod autotune;
pub mod block;
pub mod builtin;
pub mod compile;
pub mod costmodel;
pub mod expr;
pub mod interp;
pub mod operator;
pub mod target;

pub use analysis::{
    compile_with_options, optimize, CompileOptions, OptLevel, OptimizeStats, VerifyMode,
};
pub use block::{BlockRegs, Columns, DEFAULT_BLOCK};
pub use compile::{compile, Program};
pub use costmodel::program_cost;
pub use expr::FloatExpr;
pub use fpcore::eval::Bindings;
pub use interp::{
    eval_batch, eval_batch_with, eval_float_expr_in, eval_float_expr_indexed, measure_runtime,
    SliceEnv,
};
pub use operator::{Impl, OpId, Operator};
pub use target::{IfCostStyle, Target};
