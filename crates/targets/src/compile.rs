//! Bytecode compilation of float programs: compile once, evaluate many times.
//!
//! The tree-walk interpreter ([`crate::interp::eval_float_expr_in`]) re-walks
//! the `FloatExpr` — and, for every emulated operator, the operator's
//! real-number desugaring — at every sample point, allocating an argument
//! vector per operator node and scanning symbol bindings per variable
//! reference. The search loop evaluates each candidate over thousands of
//! points, so that walk is the system's hottest path.
//!
//! [`compile`] lowers a `FloatExpr` into a flat register-machine [`Program`]:
//!
//! * emulated operators are **inlined** — their fpcore desugarings are spliced
//!   into the instruction stream at compile time, with the positional argument
//!   symbols resolved to registers, so no symbol lookup or tree walk remains at
//!   run time;
//! * repeated subtrees are **shared** — instructions are hash-consed (common
//!   subexpression elimination), turning the expression tree into a dag whose
//!   shared nodes are computed once per point (cf. *Balancing expression
//!   dags*);
//! * constants live in a pool preloaded into low registers, and variables are
//!   resolved to point columns once per batch, not once per point.
//!
//! Evaluation is a tight match-loop over [`Instr`] against a reusable register
//! file. Every instruction applies the *same* host operation as the tree walk
//! ([`fpcore::eval::apply_op1`] and friends, [`round_to_type`], the operator's
//! native function), in dataflow order, so the compiled path is bit-identical
//! to [`crate::interp::eval_float_expr_in`] — a property the differential test
//! suite and the `eval_throughput` CI gate both assert.

use crate::expr::FloatExpr;
use crate::operator::{arg_symbol, round_to_type, Impl};
use crate::target::Target;
use fpcore::eval::{apply_op1, apply_op2, apply_op3, Bindings};
use fpcore::{Expr, FpType, RealOp, Symbol};
use std::collections::HashMap;

/// Largest native-operator arity the evaluator's stack buffer supports.
pub(crate) const MAX_CALL_ARITY: usize = 8;

/// One register-machine instruction. Input and output registers are indices
/// into the program's register file; every instruction writes exactly one
/// fresh register (`dst`), so the program is in SSA form and instructions only
/// ever read registers written earlier (or constant/variable slots).
#[derive(Clone, Copy, Debug)]
pub enum Instr {
    /// `dst = op(a)` for a unary real operator.
    Un { op: RealOp, a: u32, dst: u32 },
    /// `dst = op(a, b)` for a binary real operator (comparisons produce
    /// `1.0` / `0.0`, matching the tree walk).
    Bin {
        op: RealOp,
        a: u32,
        b: u32,
        dst: u32,
    },
    /// `dst = op(a, b, c)` for a ternary real operator (`fma`).
    Tern {
        op: RealOp,
        a: u32,
        b: u32,
        c: u32,
        dst: u32,
    },
    /// `dst = round_to_type(a, Binary32)` — the only non-identity rounding.
    Round32 { a: u32, dst: u32 },
    /// `dst = if c != 0.0 { t } else { e }` — conditionals compile to a
    /// select over both (pure) branches rather than a jump.
    Select { c: u32, t: u32, e: u32, dst: u32 },
    /// `dst = fun(args)` for a linked (native) operator implementation; the
    /// argument registers live in the program's argument pool at
    /// `first..first + arity`.
    Call {
        fun: fn(&[f64]) -> f64,
        first: u32,
        arity: u32,
        dst: u32,
    },
    /// `dst = fun([a])` for a unary native operator with a registered
    /// block-wide sweep form ([`crate::operator::SweepImpl`]): the scalar
    /// engine calls `fun` per point, the block engine calls `sweep` over the
    /// whole lane slice — bit-identical by the sweep contract.
    CallUn {
        fun: fn(&[f64]) -> f64,
        sweep: fn(&mut [f64], &[f64]),
        a: u32,
        dst: u32,
    },
    /// `dst = fun([a, b])` for a binary native operator with a block-wide
    /// sweep form (see [`Instr::CallUn`]).
    CallBin {
        fun: fn(&[f64]) -> f64,
        sweep: fn(&mut [f64], &[f64], &[f64]),
        a: u32,
        b: u32,
        dst: u32,
    },
}

impl Instr {
    pub(crate) fn dst(&self) -> u32 {
        match *self {
            Instr::Un { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Tern { dst, .. }
            | Instr::Round32 { dst, .. }
            | Instr::Select { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::CallUn { dst, .. }
            | Instr::CallBin { dst, .. } => dst,
        }
    }

    /// Calls `f` with every register the instruction reads.
    pub(crate) fn for_each_read(&self, arg_pool: &[u32], mut f: impl FnMut(u32)) {
        match *self {
            Instr::Un { a, .. } | Instr::Round32 { a, .. } | Instr::CallUn { a, .. } => f(a),
            Instr::Bin { a, b, .. } | Instr::CallBin { a, b, .. } => {
                f(a);
                f(b);
            }
            Instr::Tern { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
            Instr::Select { c, t, e, .. } => {
                f(c);
                f(t);
                f(e);
            }
            Instr::Call { first, arity, .. } => {
                for &reg in &arg_pool[first as usize..(first + arity) as usize] {
                    f(reg);
                }
            }
        }
    }

    /// True when every register the instruction reads is below `limit` — the
    /// SSA property (operands allocated before the destination) that lets the
    /// block evaluator split its flat slab at the destination row. Checked in
    /// production by the verifier's `operand-order` rule; this helper remains
    /// for direct assertions in tests.
    #[cfg(test)]
    pub(crate) fn reads_below(&self, limit: u32, arg_pool: &[u32]) -> bool {
        let mut ok = true;
        self.for_each_read(arg_pool, |reg| ok &= reg < limit);
        ok
    }
}

/// A select arm's instruction range that the block evaluator may skip
/// entirely when the block's condition mask is uniform: the skipped lanes'
/// results were discarded by the select anyway, and compile-time analysis
/// ([`Compiler::analyze_skips`]) has proven nothing outside the range reads
/// the registers it writes, so skipping is bit-identical by construction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SkipRange {
    /// Instruction index range `[start, end)` holding the arm's computation.
    pub start: u32,
    pub end: u32,
    /// The select's condition register.
    pub cond: u32,
    /// The arm is dead when every lane's condition truth equals this value
    /// (then-arms die when all-false, else-arms when all-true).
    pub dead_when: bool,
}

/// A compiled float program: a constant pool, a variable table, and a flat
/// instruction sequence, all addressing one shared register file.
///
/// A `Program` is immutable after compilation and contains only plain data, so
/// parallel evaluation workers can share one `&Program` and bring their own
/// scratch [register file](Program::new_regs).
#[derive(Clone, Debug)]
pub struct Program {
    /// Total register count (constants + variables + instruction outputs).
    pub(crate) n_regs: usize,
    /// Constant pool: `(register, value)`, preloaded by [`Program::new_regs`].
    pub(crate) consts: Vec<(u32, f64)>,
    /// Variables read by the program: `(register, symbol)`. The register holds
    /// the *raw* point value (per-occurrence rounding is a separate
    /// [`Instr::Round32`]); unbound variables load NaN, like the tree walk.
    pub(crate) vars: Vec<(u32, Symbol)>,
    /// The instruction stream, in dataflow order. SSA guarantees every
    /// instruction's operand registers are smaller than its destination (the
    /// block engine's slab split depends on this; [`Compiler::emit`] asserts
    /// it).
    pub(crate) instrs: Vec<Instr>,
    /// Argument registers for [`Instr::Call`], stored out of line so `Instr`
    /// stays `Copy` and small.
    pub(crate) arg_pool: Vec<u32>,
    /// Select arm ranges the block evaluator may skip on uniform condition
    /// masks, sorted by `start` (outer ranges before inner at the same
    /// start). Only arms that passed the privacy analysis appear here.
    pub(crate) skips: Vec<SkipRange>,
    /// The register holding the program result.
    pub(crate) result: u32,
}

impl Program {
    /// Number of instructions executed per point (a proxy for compiled size;
    /// smaller than the tree's operation count whenever CSE shared subtrees).
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Height of the register slab the program needs (the block evaluator
    /// allocates `num_regs × block_width` doubles per worker).
    pub fn num_regs(&self) -> usize {
        self.n_regs
    }

    /// Number of select arms the block evaluator can skip when a block's
    /// condition mask is uniform (arms whose registers provably leak nowhere
    /// outside the arm).
    pub fn num_skippable_arms(&self) -> usize {
        self.skips.len()
    }

    /// The distinct variables the program reads, in first-use order.
    pub fn variables(&self) -> Vec<Symbol> {
        self.vars.iter().map(|(_, v)| *v).collect()
    }

    /// A fresh register file with the constant pool preloaded. Reuse it across
    /// [`Program::eval_point`] calls: constants keep their slots (instructions
    /// never overwrite them), variables and instruction outputs are rewritten
    /// on every evaluation.
    pub fn new_regs(&self) -> Vec<f64> {
        let mut regs = vec![0.0; self.n_regs];
        for &(reg, value) in &self.consts {
            regs[reg as usize] = value;
        }
        regs
    }

    /// Resolves the program's variables against a caller point layout: entry
    /// `i` is the column of `vars` (the order of every point vector) holding
    /// the program's `i`-th variable, or `usize::MAX` when the point layout
    /// does not bind it (it then loads NaN, exactly like the tree walk). Do
    /// this once per batch, not once per point.
    pub fn bind_columns(&self, vars: &[Symbol]) -> Vec<usize> {
        self.vars
            .iter()
            .map(|(_, sym)| vars.iter().position(|v| v == sym).unwrap_or(usize::MAX))
            .collect()
    }

    /// Evaluates the program at one point given pre-resolved columns (from
    /// [`Program::bind_columns`]) and a scratch register file (from
    /// [`Program::new_regs`]). This is the accuracy hot loop's entry point:
    /// zero allocation, zero symbol lookups.
    pub fn eval_point(&self, columns: &[usize], point: &[f64], regs: &mut [f64]) -> f64 {
        for (&(reg, _), &col) in self.vars.iter().zip(columns) {
            regs[reg as usize] = point.get(col).copied().unwrap_or(f64::NAN);
        }
        self.run(regs)
    }

    /// Evaluates the program against any [`Bindings`] environment (the
    /// convenience entry point for one-off evaluations).
    pub fn eval_in<B: Bindings + ?Sized>(&self, env: &B) -> f64 {
        let mut regs = self.new_regs();
        for &(reg, sym) in &self.vars {
            regs[reg as usize] = env.value_of(sym).unwrap_or(f64::NAN);
        }
        self.run(&mut regs)
    }

    /// Evaluates the program over a batch of points sharing one variable
    /// layout, reusing a single register file for the whole sweep.
    pub fn eval_batch(&self, vars: &[Symbol], points: &[Vec<f64>]) -> Vec<f64> {
        let columns = self.bind_columns(vars);
        let mut regs = self.new_regs();
        points
            .iter()
            .map(|point| self.eval_point(&columns, point, &mut regs))
            .collect()
    }

    /// The instruction loop: variables and constants are already in `regs`.
    fn run(&self, regs: &mut [f64]) -> f64 {
        for instr in &self.instrs {
            let value = match *instr {
                Instr::Un { op, a, .. } => apply_op1(op, regs[a as usize]),
                Instr::Bin { op, a, b, .. } => apply_op2(op, regs[a as usize], regs[b as usize]),
                Instr::Tern { op, a, b, c, .. } => {
                    apply_op3(op, regs[a as usize], regs[b as usize], regs[c as usize])
                }
                Instr::Round32 { a, .. } => round_to_type(regs[a as usize], FpType::Binary32),
                Instr::Select { c, t, e, .. } => {
                    if regs[c as usize] != 0.0 {
                        regs[t as usize]
                    } else {
                        regs[e as usize]
                    }
                }
                Instr::Call {
                    fun, first, arity, ..
                } => {
                    let mut buf = [0.0f64; MAX_CALL_ARITY];
                    let args = &self.arg_pool[first as usize..(first + arity) as usize];
                    for (slot, &reg) in buf.iter_mut().zip(args) {
                        *slot = regs[reg as usize];
                    }
                    fun(&buf[..arity as usize])
                }
                Instr::CallUn { fun, a, .. } => fun(&[regs[a as usize]]),
                Instr::CallBin { fun, a, b, .. } => fun(&[regs[a as usize], regs[b as usize]]),
            };
            regs[instr.dst() as usize] = value;
        }
        regs[self.result as usize]
    }
}

/// Hash-consing key: two instructions with the same key compute the same value
/// (every instruction is pure), so the second is replaced by the first's
/// output register.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CseKey {
    /// Constants keyed by bit pattern, so `0.0` / `-0.0` / NaN stay distinct.
    Const(u64),
    Var(Symbol),
    Un(RealOp, u32),
    Bin(RealOp, u32, u32),
    Tern(RealOp, u32, u32, u32),
    Round32(u32),
    Select(u32, u32, u32),
    /// Native calls keyed by function pointer identity plus argument registers.
    Call(usize, Vec<u32>),
}

/// A select arm recorded during compilation, before the privacy analysis
/// decides whether the block evaluator may skip it.
struct ArmCandidate {
    /// Instruction index range `[start, end)` of the arm's fresh instructions.
    start: usize,
    end: usize,
    /// The select's condition register.
    cond: u32,
    /// Mask truth value under which the arm is dead (see [`SkipRange`]).
    dead_when: bool,
    /// The arm's result register (the select is allowed to read it).
    arm: u32,
    /// Instruction index of the owning select.
    select_idx: usize,
}

struct Compiler<'t> {
    target: &'t Target,
    consts: Vec<(u32, f64)>,
    vars: Vec<(u32, Symbol)>,
    instrs: Vec<Instr>,
    arg_pool: Vec<u32>,
    arms: Vec<ArmCandidate>,
    cse: HashMap<CseKey, u32>,
    n_regs: u32,
}

impl<'t> Compiler<'t> {
    fn new(target: &'t Target) -> Compiler<'t> {
        Compiler {
            target,
            consts: Vec::new(),
            vars: Vec::new(),
            instrs: Vec::new(),
            arg_pool: Vec::new(),
            arms: Vec::new(),
            cse: HashMap::new(),
            n_regs: 0,
        }
    }

    fn fresh_reg(&mut self) -> u32 {
        let reg = self.n_regs;
        self.n_regs += 1;
        reg
    }

    fn const_reg(&mut self, value: f64) -> u32 {
        let key = CseKey::Const(value.to_bits());
        if let Some(&reg) = self.cse.get(&key) {
            return reg;
        }
        let reg = self.fresh_reg();
        self.consts.push((reg, value));
        self.cse.insert(key, reg);
        reg
    }

    fn var_reg(&mut self, var: Symbol) -> u32 {
        let key = CseKey::Var(var);
        if let Some(&reg) = self.cse.get(&key) {
            return reg;
        }
        let reg = self.fresh_reg();
        self.vars.push((reg, var));
        self.cse.insert(key, reg);
        reg
    }

    /// Emits `instr(dst)` unless an identical instruction already exists.
    fn emit(&mut self, key: CseKey, build: impl FnOnce(u32) -> Instr) -> u32 {
        if let Some(&reg) = self.cse.get(&key) {
            return reg;
        }
        // Register discipline (dst fresh and strictly above every operand) is
        // checked by the IR verifier after compilation rather than asserted
        // per-emit; see `crate::analysis::verify`.
        let dst = self.fresh_reg();
        let instr = build(dst);
        self.instrs.push(instr);
        self.cse.insert(key, dst);
        dst
    }

    /// Rounds `reg` to `ty`; binary64 and bool rounding is the identity and
    /// emits nothing.
    fn round(&mut self, reg: u32, ty: FpType) -> u32 {
        match ty {
            FpType::Binary64 | FpType::Bool => reg,
            FpType::Binary32 => {
                self.emit(CseKey::Round32(reg), |dst| Instr::Round32 { a: reg, dst })
            }
        }
    }

    fn select(&mut self, c: u32, t: u32, e: u32) -> u32 {
        self.emit(CseKey::Select(c, t, e), |dst| Instr::Select {
            c,
            t,
            e,
            dst,
        })
    }

    /// Emits the select for a compiled conditional and records both arms'
    /// fresh instruction ranges as skip candidates for the block evaluator.
    /// `t_start ≤ t_end ≤ e_end` are the instruction counts observed before
    /// the then-arm, between the arms, and after the else-arm.
    fn select_with_arms(
        &mut self,
        cond: u32,
        t_start: usize,
        then: u32,
        t_end: usize,
        els: u32,
        e_end: usize,
    ) -> u32 {
        let before = self.instrs.len();
        let dst = self.select(cond, then, els);
        // When both arms resolve (via CSE) to the same register, the select
        // reads that register through its *live* operand whatever the mask,
        // so neither arm is ever dead — and the privacy exception below
        // could not tell the dead read from the live one. Record nothing.
        if self.instrs.len() > before && then != els {
            let select_idx = self.instrs.len() - 1;
            if t_end > t_start {
                self.arms.push(ArmCandidate {
                    start: t_start,
                    end: t_end,
                    cond,
                    dead_when: false,
                    arm: then,
                    select_idx,
                });
            }
            if e_end > t_end {
                self.arms.push(ArmCandidate {
                    start: t_end,
                    end: e_end,
                    cond,
                    dead_when: true,
                    arm: els,
                    select_idx,
                });
            }
        }
        dst
    }

    /// Emits a real-operator application over already-compiled registers.
    fn real_op(&mut self, op: RealOp, args: &[u32]) -> u32 {
        match *args {
            [a] => self.emit(CseKey::Un(op, a), |dst| Instr::Un { op, a, dst }),
            [a, b] => self.emit(CseKey::Bin(op, a, b), |dst| Instr::Bin { op, a, b, dst }),
            [a, b, c] => self.emit(CseKey::Tern(op, a, b, c), |dst| Instr::Tern {
                op,
                a,
                b,
                c,
                dst,
            }),
            _ => panic!("{op} has unsupported arity {}", args.len()),
        }
    }

    /// Compiles a float expression, returning the register holding its value.
    fn compile_float(&mut self, expr: &FloatExpr) -> u32 {
        match expr {
            FloatExpr::Num(v, _) => self.const_reg(*v),
            FloatExpr::Var(v, ty) => {
                let raw = self.var_reg(*v);
                self.round(raw, *ty)
            }
            FloatExpr::Op(id, args) => {
                let op = self.target.operator(*id);
                assert_eq!(args.len(), op.arity(), "arity mismatch calling {}", op.name);
                // Mirror the tree walk: evaluate each argument, round it to
                // the operator's argument type, run the implementation, round
                // the result to the return type.
                let mut arg_regs = Vec::with_capacity(args.len());
                for (arg, ty) in args.iter().zip(&op.arg_types) {
                    let raw = self.compile_float(arg);
                    arg_regs.push(self.round(raw, *ty));
                }
                let raw = match op.implementation {
                    Impl::Native(fun) => self.call(fun, op.sweep, &arg_regs, &op.name),
                    Impl::Emulated => self.inline_real(&op.desugaring, &arg_regs),
                };
                self.round(raw, op.ret_type)
            }
            FloatExpr::Cmp(op, a, b) => {
                let lhs = self.compile_float(a);
                let rhs = self.compile_float(b);
                assert!(
                    matches!(
                        op,
                        RealOp::Lt | RealOp::Gt | RealOp::Le | RealOp::Ge | RealOp::Eq | RealOp::Ne
                    ),
                    "{op} is not a comparison"
                );
                self.real_op(*op, &[lhs, rhs])
            }
            FloatExpr::If(c, t, e) => {
                let cond = self.compile_float(c);
                let t_start = self.instrs.len();
                let then = self.compile_float(t);
                let t_end = self.instrs.len();
                let els = self.compile_float(e);
                let e_end = self.instrs.len();
                self.select_with_arms(cond, t_start, then, t_end, els, e_end)
            }
        }
    }

    fn call(
        &mut self,
        fun: fn(&[f64]) -> f64,
        sweep: Option<crate::operator::SweepImpl>,
        arg_regs: &[u32],
        name: &str,
    ) -> u32 {
        use crate::operator::SweepImpl;
        assert!(
            arg_regs.len() <= MAX_CALL_ARITY,
            "native operator {name} has arity {} > {MAX_CALL_ARITY}",
            arg_regs.len()
        );
        let key = CseKey::Call(fun as usize, arg_regs.to_vec());
        if let Some(&reg) = self.cse.get(&key) {
            return reg;
        }
        // Operators with a block-wide sweep form compile to the dedicated
        // call instruction the block engine can dispatch a whole lane slice
        // through (the scalar engines still call `fun` per point).
        match (sweep, arg_regs) {
            (Some(SweepImpl::Un(sweep)), &[a]) => {
                return self.emit(key, |dst| Instr::CallUn { fun, sweep, a, dst });
            }
            (Some(SweepImpl::Bin(sweep)), &[a, b]) => {
                return self.emit(key, |dst| Instr::CallBin {
                    fun,
                    sweep,
                    a,
                    b,
                    dst,
                });
            }
            (Some(_), _) => panic!("sweep form of {name} does not match its arity"),
            (None, _) => {}
        }
        let first = self.arg_pool.len() as u32;
        self.arg_pool.extend_from_slice(arg_regs);
        let arity = arg_regs.len() as u32;
        self.emit(key, |dst| Instr::Call {
            fun,
            first,
            arity,
            dst,
        })
    }

    /// Inlines an emulated operator's real-number desugaring: the positional
    /// argument symbols `a0..aN` resolve to the (already rounded) argument
    /// registers; any other free symbol loads NaN, matching the tree walk's
    /// `ArgBindings` semantics.
    fn inline_real(&mut self, expr: &Expr, arg_regs: &[u32]) -> u32 {
        match expr {
            Expr::Num(c) => self.const_reg(c.to_f64()),
            Expr::Var(v) => (0..arg_regs.len())
                .find(|&i| arg_symbol(i) == *v)
                .map_or_else(|| self.const_reg(f64::NAN), |i| arg_regs[i]),
            Expr::Op(op, args) => {
                let regs: Vec<u32> = args.iter().map(|a| self.inline_real(a, arg_regs)).collect();
                self.real_op(*op, &regs)
            }
            Expr::If(c, t, e) => {
                let cond = self.inline_real(c, arg_regs);
                let t_start = self.instrs.len();
                let then = self.inline_real(t, arg_regs);
                let t_end = self.instrs.len();
                let els = self.inline_real(e, arg_regs);
                let e_end = self.instrs.len();
                self.select_with_arms(cond, t_start, then, t_end, els, e_end)
            }
        }
    }

    /// The privacy analysis behind the uniform-mask select fast path: an arm
    /// range is skippable only if no instruction *outside* the range (and not
    /// the program result) reads a register the range defines — the sole
    /// exception being the owning select reading the arm's result, whose
    /// lanes the uniform mask discards anyway. CSE can leak an arm's
    /// subexpression to later consumers; those arms are conservatively kept.
    fn analyze_skips(&self, result: u32) -> Vec<SkipRange> {
        // Instruction destinations are strictly increasing (SSA with fresh
        // registers), so "which instruction defines register r" is a binary
        // search; a miss means r is a constant or variable slot.
        let dsts: Vec<u32> = self.instrs.iter().map(Instr::dst).collect();
        let def_in = |reg: u32, start: usize, end: usize| match dsts.binary_search(&reg) {
            Ok(i) => i >= start && i < end,
            Err(_) => false,
        };
        let mut skips: Vec<SkipRange> = Vec::new();
        for cand in &self.arms {
            if def_in(result, cand.start, cand.end) {
                continue;
            }
            let mut private = true;
            for (j, instr) in self.instrs.iter().enumerate().skip(cand.end) {
                instr.for_each_read(&self.arg_pool, |reg| {
                    if def_in(reg, cand.start, cand.end)
                        && !(j == cand.select_idx && reg == cand.arm)
                    {
                        private = false;
                    }
                });
                if !private {
                    break;
                }
            }
            if private {
                skips.push(SkipRange {
                    start: cand.start as u32,
                    end: cand.end as u32,
                    cond: cand.cond,
                    dead_when: cand.dead_when,
                });
            }
        }
        // Outer ranges before inner ones at the same start, so a skipped
        // outer arm jumps past everything it contains.
        skips.sort_by(|a, b| {
            (a.start, std::cmp::Reverse(a.end)).cmp(&(b.start, std::cmp::Reverse(b.end)))
        });
        skips
    }

    fn finish(self, result: u32) -> Program {
        let skips = self.analyze_skips(result);
        Program {
            n_regs: self.n_regs as usize,
            consts: self.consts,
            vars: self.vars,
            instrs: self.instrs,
            arg_pool: self.arg_pool,
            skips,
            result,
        }
    }
}

/// Compiles a float program for batch evaluation on `target`.
///
/// The compiled [`Program`] is bit-identical to
/// [`crate::interp::eval_float_expr_in`] on every input (including NaN and
/// infinities): it performs the same host operations in dataflow order, and
/// every instruction is pure, so sharing subtrees (CSE) and evaluating both
/// sides of a conditional (select) cannot change any result.
///
/// Compilation is linear in the program size (after inlining) and is meant to
/// be amortized: compile once per candidate, evaluate over every sample point.
///
/// # Panics
///
/// Panics on arity mismatches in the program or its desugarings (programming
/// errors in a target description, exactly as the tree walk would).
pub fn compile(target: &Target, expr: &FloatExpr) -> Program {
    let mut compiler = Compiler::new(target);
    let result = compiler.compile_float(expr);
    let program = compiler.finish(result);
    #[cfg(debug_assertions)]
    crate::analysis::verify::assert_valid(
        &program,
        Some(target),
        crate::analysis::verify::Mode::Ssa,
    );
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{eval_float_expr_in, SliceEnv};
    use crate::operator::Operator;
    use fpcore::FpType::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn target() -> Target {
        Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::emulated("*.f64", &[Binary64, Binary64], Binary64, "(* a0 a1)", 1.0),
            Operator::emulated("exp.f64", &[Binary64], Binary64, "(exp a0)", 40.0),
            Operator::emulated("log1p.f64", &[Binary64], Binary64, "(log (+ 1 a0))", 20.0),
            Operator::emulated("/.f32", &[Binary32, Binary32], Binary32, "(/ a0 a1)", 10.0),
        ])
    }

    fn check_against_tree_walk(t: &Target, expr: &FloatExpr, vars: &[Symbol], points: &[Vec<f64>]) {
        let program = compile(t, expr);
        let compiled = program.eval_batch(vars, points);
        for (point, got) in points.iter().zip(compiled) {
            let want = eval_float_expr_in(t, expr, &SliceEnv::new(vars, point));
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "compiled diverges at {point:?}: tree walk {want}, bytecode {got}"
            );
        }
    }

    #[test]
    fn straight_line_programs_match_tree_walk() {
        let t = target();
        let add = t.find_operator("+.f64").unwrap();
        let mul = t.find_operator("*.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let prog = FloatExpr::Op(
            add,
            vec![
                FloatExpr::Op(mul, vec![x.clone(), x]),
                FloatExpr::literal(1.0, Binary64),
            ],
        );
        let vars = [Symbol::new("x")];
        let points: Vec<Vec<f64>> = vec![
            vec![3.0],
            vec![-0.0],
            vec![f64::NAN],
            vec![f64::INFINITY],
            vec![f64::NEG_INFINITY],
            vec![1e-308],
        ];
        check_against_tree_walk(&t, &prog, &vars, &points);
        assert_eq!(
            compile(&t, &prog).eval_in(&SliceEnv::new(&vars, &[3.0])),
            10.0
        );
    }

    #[test]
    fn unbound_variables_load_nan() {
        let t = target();
        let add = t.find_operator("+.f64").unwrap();
        let prog = FloatExpr::Op(
            add,
            vec![
                FloatExpr::Var(Symbol::new("zz"), Binary64),
                FloatExpr::literal(1.0, Binary64),
            ],
        );
        let program = compile(&t, &prog);
        let out = program.eval_batch(&[Symbol::new("x")], &[vec![2.0]]);
        assert!(out[0].is_nan());
    }

    #[test]
    fn binary32_rounding_is_preserved() {
        let t = target();
        let div32 = t.find_operator("/.f32").unwrap();
        let prog = FloatExpr::Op(
            div32,
            vec![
                FloatExpr::Var(Symbol::new("x"), Binary32),
                FloatExpr::literal(3.0, Binary32),
            ],
        );
        let vars = [Symbol::new("x")];
        let program = compile(&t, &prog);
        let out = program.eval_batch(&vars, &[vec![1.0]]);
        assert_eq!(out[0], (1.0f32 / 3.0f32) as f64);
        check_against_tree_walk(&t, &prog, &vars, &[vec![1.0], vec![0.1], vec![f64::NAN]]);
    }

    #[test]
    fn conditionals_select_the_taken_branch() {
        let t = target();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let prog = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, Binary64)),
            )),
            Box::new(FloatExpr::literal(-1.0, Binary64)),
            Box::new(FloatExpr::literal(1.0, Binary64)),
        );
        let vars = [Symbol::new("x")];
        let points: Vec<Vec<f64>> = vec![vec![-2.0], vec![2.0], vec![f64::NAN]];
        check_against_tree_walk(&t, &prog, &vars, &points);
    }

    #[test]
    fn desugarings_are_inlined_not_called() {
        let t = target();
        let log1p = t.find_operator("log1p.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let prog = FloatExpr::Op(log1p, vec![x]);
        let program = compile(&t, &prog);
        // log1p desugars to (log (+ 1 a0)): one add, one log, zero calls.
        assert_eq!(program.num_instrs(), 2);
        check_against_tree_walk(&t, &prog, &[Symbol::new("x")], &[vec![0.5], vec![-2.0]]);
    }

    /// A native operator with an observable execution count, to prove shared
    /// subtrees run once in the compiled form (and twice in the tree walk).
    fn counted_sqrt(args: &[f64]) -> f64 {
        CALLS.fetch_add(1, Ordering::Relaxed);
        args[0].sqrt()
    }
    static CALLS: AtomicUsize = AtomicUsize::new(0);

    #[test]
    fn cse_evaluates_shared_subtrees_once() {
        let t = Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::native(
                "sqrt.f64",
                &[Binary64],
                Binary64,
                "(sqrt a0)",
                2.0,
                counted_sqrt,
            ),
        ]);
        let add = t.find_operator("+.f64").unwrap();
        let sqrt = t.find_operator("sqrt.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        // sqrt(x) + sqrt(x): the tree has two sqrt nodes, the dag has one.
        let shared = FloatExpr::Op(sqrt, vec![x]);
        let prog = FloatExpr::Op(add, vec![shared.clone(), shared]);
        let vars = [Symbol::new("x")];

        let program = compile(&t, &prog);
        assert_eq!(program.num_instrs(), 2, "one sqrt call and one add");

        CALLS.store(0, Ordering::Relaxed);
        let out = program.eval_batch(&vars, &[vec![9.0]]);
        assert_eq!(out[0], 6.0);
        assert_eq!(
            CALLS.load(Ordering::Relaxed),
            1,
            "the compiled dag evaluates the shared sqrt once"
        );

        CALLS.store(0, Ordering::Relaxed);
        let tree = eval_float_expr_in(&t, &prog, &SliceEnv::new(&vars, &[9.0]));
        assert_eq!(tree, 6.0);
        assert_eq!(
            CALLS.load(Ordering::Relaxed),
            2,
            "the tree walk re-evaluates the shared sqrt"
        );
    }

    #[test]
    fn cse_dedups_constants_and_variables() {
        let t = target();
        let add = t.find_operator("+.f64").unwrap();
        let mul = t.find_operator("*.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        // (x + 2) * (x + 2)
        let sum = FloatExpr::Op(add, vec![x.clone(), FloatExpr::literal(2.0, Binary64)]);
        let prog = FloatExpr::Op(mul, vec![sum.clone(), sum]);
        let program = compile(&t, &prog);
        assert_eq!(program.num_instrs(), 2, "one add (shared) and one mul");
        assert_eq!(program.variables(), vec![Symbol::new("x")]);
        check_against_tree_walk(&t, &prog, &[Symbol::new("x")], &[vec![3.0], vec![-1.5]]);
    }

    #[test]
    fn select_arms_are_recorded_for_skipping() {
        let t = target();
        let exp = t.find_operator("exp.f64").unwrap();
        let mul = t.find_operator("*.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let cond = FloatExpr::Cmp(
            RealOp::Lt,
            Box::new(x.clone()),
            Box::new(FloatExpr::literal(0.0, Binary64)),
        );
        // Both arms carry instructions and neither leaks: both skippable.
        let prog = FloatExpr::If(
            Box::new(cond.clone()),
            Box::new(FloatExpr::Op(exp, vec![x.clone()])),
            Box::new(FloatExpr::Op(mul, vec![x.clone(), x.clone()])),
        );
        let program = compile(&t, &prog);
        assert_eq!(program.num_skippable_arms(), 2);

        // CSE leak: the then-arm's exp(x) is also consumed outside the
        // select, so skipping the arm would leave its register stale — the
        // privacy analysis must reject it.
        let shared = FloatExpr::Op(exp, vec![x.clone()]);
        let leaky = FloatExpr::Op(
            mul,
            vec![
                FloatExpr::If(
                    Box::new(cond),
                    Box::new(shared.clone()),
                    Box::new(FloatExpr::literal(1.0, Binary64)),
                ),
                shared,
            ],
        );
        let program = compile(&t, &leaky);
        assert_eq!(
            program.num_skippable_arms(),
            0,
            "a CSE-shared arm must not be skippable"
        );
        // Still bit-identical to the tree walk, leak or no leak.
        check_against_tree_walk(
            &t,
            &leaky,
            &[Symbol::new("x")],
            &[vec![-2.0], vec![3.0], vec![f64::NAN]],
        );
    }

    #[test]
    fn register_file_reuse_is_sound() {
        let t = target();
        let exp = t.find_operator("exp.f64").unwrap();
        let prog = FloatExpr::Op(exp, vec![FloatExpr::Var(Symbol::new("x"), Binary64)]);
        let program = compile(&t, &prog);
        let vars = [Symbol::new("x")];
        let columns = program.bind_columns(&vars);
        let mut regs = program.new_regs();
        // Sweeping twice over the same register file must give the same bits.
        let first: Vec<u64> = (0..10)
            .map(|i| {
                program
                    .eval_point(&columns, &[i as f64 * 0.1], &mut regs)
                    .to_bits()
            })
            .collect();
        let second: Vec<u64> = (0..10)
            .map(|i| {
                program
                    .eval_point(&columns, &[i as f64 * 0.1], &mut regs)
                    .to_bits()
            })
            .collect();
        assert_eq!(first, second);
    }
}
