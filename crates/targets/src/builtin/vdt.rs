//! The `vdt` target (Figure 6, row 8): CERN's vdt library of fast, vectorizable
//! approximate transcendental functions (`fast_exp`, `fast_sin`, ...), layered on
//! top of the C99 scalar target. The `fast_*` routines target roughly 8 units in
//! the last place of error; the reciprocal square root comes in two accuracy
//! levels (`fast_isqrt`, `approx_isqrt`).

use super::c99;
use crate::operator::{truncate_mantissa, Operator, SweepImpl};
use crate::target::{IfCostStyle, Target};
use fpcore::eval::{apply_op1, sweep_op1};
use fpcore::FpType::{Binary32, Binary64};
use fpcore::RealOp;

/// Significant bits kept by the double-precision `fast_*` emulations
/// (≈ a couple of hundred ulps of error, mirroring vdt's accuracy contract).
const FAST_BITS_F64: u32 = 42;
/// Significant bits kept by the single-precision `fast_*f` emulations.
const FAST_BITS_F32: u32 = 18;

// The `fast_*` emulations route the underlying function through
// `fpcore::eval`'s operator application (vecmath kernels by default, host
// libm under `--features libm-calls`) and then truncate the mantissa. The
// sweep form runs the identical per-lane operations as the scalar form —
// kernel sweep, then the truncation pass — so block execution stays
// bit-identical to the scalar engines.
macro_rules! fast64 {
    ($name:ident, $sweep:ident, $op:ident) => {
        fn $name(a: &[f64]) -> f64 {
            truncate_mantissa(apply_op1(RealOp::$op, a[0]), FAST_BITS_F64)
        }
        fn $sweep(out: &mut [f64], a: &[f64]) {
            sweep_op1(RealOp::$op, out, a);
            for o in out.iter_mut() {
                *o = truncate_mantissa(*o, FAST_BITS_F64);
            }
        }
    };
}

// The f32 variants pre-round the argument per lane, which would alias the
// output slice in a sweep; they keep the per-lane call path (still routed
// through apply_op1, so engine bit-identity is unaffected).
macro_rules! fast32 {
    ($name:ident, $op:ident) => {
        fn $name(a: &[f64]) -> f64 {
            let x = a[0] as f32 as f64;
            truncate_mantissa(apply_op1(RealOp::$op, x) as f32 as f64, FAST_BITS_F32)
        }
    };
}

fast64!(fast_exp, fast_exp_sweep, Exp);
fast64!(fast_log, fast_log_sweep, Log);
fast64!(fast_sin, fast_sin_sweep, Sin);
fast64!(fast_cos, fast_cos_sweep, Cos);
fast64!(fast_tan, fast_tan_sweep, Tan);
fast64!(fast_asin, fast_asin_sweep, Asin);
fast64!(fast_acos, fast_acos_sweep, Acos);
fast64!(fast_atan, fast_atan_sweep, Atan);
fast64!(fast_tanh, fast_tanh_sweep, Tanh);

fast32!(fast_expf, Exp);
fast32!(fast_logf, Log);
fast32!(fast_sinf, Sin);
fast32!(fast_cosf, Cos);
fast32!(fast_tanf, Tan);
fast32!(fast_atanf, Atan);

fn fast_isqrt(a: &[f64]) -> f64 {
    // Three Newton iterations from an 8-bit seed: ~40 accurate bits.
    truncate_mantissa(1.0 / a[0].sqrt(), 40)
}

fn fast_isqrt_sweep(out: &mut [f64], a: &[f64]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = truncate_mantissa(1.0 / x.sqrt(), 40);
    }
}

fn approx_isqrt(a: &[f64]) -> f64 {
    // A cheaper variant with fewer iterations: ~30 accurate bits.
    truncate_mantissa(1.0 / a[0].sqrt(), 30)
}

fn approx_isqrt_sweep(out: &mut [f64], a: &[f64]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = truncate_mantissa(1.0 / x.sqrt(), 30);
    }
}

/// Builds the vdt target description.
pub fn target() -> Target {
    let b64 = [Binary64];
    let b32 = [Binary32];
    let mut t = Target::new(
        "vdt",
        "CERN vdt: fast approximate transcendental functions (~8 ulp) on top of scalar C",
    )
    .with_if_style(IfCostStyle::Scalar, 1.0)
    .with_leaf_costs(0.5, 0.5)
    .with_cost_source("auto-tune");
    t.import(&c99::target());

    // The accurate function costs come from the imported C target; the fast
    // variants are roughly 2-3x cheaper.
    let fast: Vec<Operator> = vec![
        Operator::native("fast_exp.f64", &b64, Binary64, "(exp a0)", 16.0, fast_exp)
            .with_sweep(SweepImpl::Un(fast_exp_sweep)),
        Operator::native("fast_log.f64", &b64, Binary64, "(log a0)", 14.0, fast_log)
            .with_sweep(SweepImpl::Un(fast_log_sweep)),
        Operator::native("fast_sin.f64", &b64, Binary64, "(sin a0)", 18.0, fast_sin)
            .with_sweep(SweepImpl::Un(fast_sin_sweep)),
        Operator::native("fast_cos.f64", &b64, Binary64, "(cos a0)", 18.0, fast_cos)
            .with_sweep(SweepImpl::Un(fast_cos_sweep)),
        Operator::native("fast_tan.f64", &b64, Binary64, "(tan a0)", 22.0, fast_tan)
            .with_sweep(SweepImpl::Un(fast_tan_sweep)),
        Operator::native(
            "fast_asin.f64",
            &b64,
            Binary64,
            "(asin a0)",
            20.0,
            fast_asin,
        )
        .with_sweep(SweepImpl::Un(fast_asin_sweep)),
        Operator::native(
            "fast_acos.f64",
            &b64,
            Binary64,
            "(acos a0)",
            20.0,
            fast_acos,
        )
        .with_sweep(SweepImpl::Un(fast_acos_sweep)),
        Operator::native(
            "fast_atan.f64",
            &b64,
            Binary64,
            "(atan a0)",
            22.0,
            fast_atan,
        )
        .with_sweep(SweepImpl::Un(fast_atan_sweep)),
        Operator::native(
            "fast_tanh.f64",
            &b64,
            Binary64,
            "(tanh a0)",
            22.0,
            fast_tanh,
        )
        .with_sweep(SweepImpl::Un(fast_tanh_sweep)),
        Operator::native("fast_expf.f32", &b32, Binary32, "(exp a0)", 10.0, fast_expf),
        Operator::native("fast_logf.f32", &b32, Binary32, "(log a0)", 9.0, fast_logf),
        Operator::native("fast_sinf.f32", &b32, Binary32, "(sin a0)", 11.0, fast_sinf),
        Operator::native("fast_cosf.f32", &b32, Binary32, "(cos a0)", 11.0, fast_cosf),
        Operator::native("fast_tanf.f32", &b32, Binary32, "(tan a0)", 13.0, fast_tanf),
        Operator::native(
            "fast_atanf.f32",
            &b32,
            Binary32,
            "(atan a0)",
            13.0,
            fast_atanf,
        ),
        Operator::native(
            "fast_isqrt.f64",
            &b64,
            Binary64,
            "(/ 1 (sqrt a0))",
            6.0,
            fast_isqrt,
        )
        .with_sweep(SweepImpl::Un(fast_isqrt_sweep)),
        Operator::native(
            "approx_isqrt.f64",
            &b64,
            Binary64,
            "(/ 1 (sqrt a0))",
            4.0,
            approx_isqrt,
        )
        .with_sweep(SweepImpl::Un(approx_isqrt_sweep)),
    ];
    for op in fast {
        t.add_operator(op);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_variants_are_cheaper_than_accurate_ones() {
        let t = target();
        for (fast, accurate) in [
            ("fast_exp.f64", "exp.f64"),
            ("fast_sin.f64", "sin.f64"),
            ("fast_log.f64", "log.f64"),
            ("fast_atan.f64", "atan.f64"),
        ] {
            let f = t.operator(t.find_operator(fast).unwrap()).cost;
            let a = t.operator(t.find_operator(accurate).unwrap()).cost;
            assert!(
                f < a,
                "{fast} ({f}) should be cheaper than {accurate} ({a})"
            );
        }
    }

    #[test]
    fn fast_variants_are_less_accurate_but_close() {
        let t = target();
        let fast = t.operator(t.find_operator("fast_sin.f64").unwrap());
        let accurate = t.operator(t.find_operator("sin.f64").unwrap());
        let x = 1.2345678;
        let f = fast.execute(&[x]);
        let a = accurate.execute(&[x]);
        assert_ne!(f, a, "fast_sin should differ from sin in low bits");
        assert!((f - a).abs() / a.abs() < 1e-9, "but only in low bits");
    }

    #[test]
    fn two_isqrt_accuracy_levels() {
        let t = target();
        let fast = t.operator(t.find_operator("fast_isqrt.f64").unwrap());
        let approx = t.operator(t.find_operator("approx_isqrt.f64").unwrap());
        assert!(approx.cost < fast.cost);
        let x = 7.0f64;
        let truth = 1.0 / x.sqrt();
        let e_fast = (fast.execute(&[x]) - truth).abs();
        let e_approx = (approx.execute(&[x]) - truth).abs();
        assert!(
            e_approx >= e_fast,
            "the cheaper variant is no more accurate"
        );
    }

    #[test]
    fn inherits_the_c_target() {
        let t = target();
        assert!(t.find_operator("+.f64").is_some());
        assert!(t.find_operator("hypot.f64").is_some());
        assert!(t.find_operator("fast_expf.f32").is_some());
    }
}
