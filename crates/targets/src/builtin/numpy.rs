//! The `NumPy` target (Figure 6, row 7): `numpy` elementwise math routines.
//! Binary64 only, vector-style conditionals (`numpy.where` evaluates both
//! branches), and a sizeable per-call overhead from allocating temporaries.

use super::{basic_arith_ops, libm_ops, ArithCosts};
use crate::operator::Operator;
use crate::target::{IfCostStyle, Target};
use fpcore::FpType::Binary64;

/// Per-ufunc-call overhead.
pub const UFUNC_OVERHEAD: f64 = 8.0;

/// Builds the NumPy target description.
pub fn target() -> Target {
    let b = [Binary64];
    let mut ops = Vec::new();
    ops.extend(basic_arith_ops(
        Binary64,
        ArithCosts {
            simple: UFUNC_OVERHEAD + 1.0,
            div: UFUNC_OVERHEAD + 2.0,
            sqrt: UFUNC_OVERHEAD + 3.0,
        },
        true,
    ));
    ops.extend(libm_ops(Binary64, UFUNC_OVERHEAD, 0.3, false));
    // numpy-specific elementwise helpers from routines.math.
    ops.extend(vec![
        Operator::emulated(
            "square.f64",
            &b,
            Binary64,
            "(* a0 a0)",
            UFUNC_OVERHEAD + 1.0,
        ),
        Operator::emulated(
            "reciprocal.f64",
            &b,
            Binary64,
            "(/ 1 a0)",
            UFUNC_OVERHEAD + 2.0,
        ),
        Operator::emulated(
            "deg2rad.f64",
            &b,
            Binary64,
            "(* a0 (/ PI 180))",
            UFUNC_OVERHEAD + 1.0,
        ),
        Operator::emulated(
            "rad2deg.f64",
            &b,
            Binary64,
            "(* a0 (/ 180 PI))",
            UFUNC_OVERHEAD + 1.0,
        ),
        Operator::emulated(
            "logaddexp.f64",
            &[Binary64, Binary64],
            Binary64,
            "(log (+ (exp a0) (exp a1)))",
            UFUNC_OVERHEAD + 25.0,
        ),
    ]);

    Target::new(
        "numpy",
        "NumPy elementwise math: binary64, numpy.where conditionals evaluate both branches",
    )
    .with_if_style(IfCostStyle::Vector, UFUNC_OVERHEAD)
    .with_leaf_costs(UFUNC_OVERHEAD * 0.5, UFUNC_OVERHEAD * 0.5)
    .with_cost_source("auto-tune")
    .with_operators(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_conditionals_and_helpers() {
        let t = target();
        assert_eq!(t.if_cost_style, IfCostStyle::Vector);
        for name in [
            "square.f64",
            "reciprocal.f64",
            "deg2rad.f64",
            "logaddexp.f64",
        ] {
            assert!(t.find_operator(name).is_some(), "missing {name}");
        }
        assert!(t.find_operator("fma.f64").is_none());
    }

    #[test]
    fn helper_semantics() {
        let t = target();
        let sq = t.operator(t.find_operator("square.f64").unwrap());
        assert_eq!(sq.execute(&[5.0]), 25.0);
        let recip = t.operator(t.find_operator("reciprocal.f64").unwrap());
        assert_eq!(recip.execute(&[4.0]), 0.25);
        let lae = t.operator(t.find_operator("logaddexp.f64").unwrap());
        assert!((lae.execute(&[0.0, 0.0]) - 2.0f64.ln()).abs() < 1e-12);
    }
}
