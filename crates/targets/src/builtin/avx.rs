//! The `AVX` target (Figure 6, row 3): x86 AVX vector arithmetic in binary32
//! and binary64 with the four fused multiply-add variants, the fast approximate
//! reciprocal (`rcpps`) and reciprocal square root (`rsqrtps`) instructions, no
//! negation instruction, no transcendental functions, and masked (vector-style)
//! conditionals. Costs follow Fog's instruction tables.

use crate::operator::{truncate_mantissa, Operator};
use crate::target::{IfCostStyle, Target};
use fpcore::FpType::{Binary32, Binary64};

fn rcp(args: &[f64]) -> f64 {
    // rcpps: relative error at most 1.5 * 2^-12; emulate by truncating the
    // reciprocal's mantissa to 12 bits.
    truncate_mantissa(1.0 / args[0], 12)
}

fn rsqrt(args: &[f64]) -> f64 {
    // rsqrtps: same accuracy contract as rcpps.
    truncate_mantissa(1.0 / args[0].sqrt(), 12)
}

fn fmadd(args: &[f64]) -> f64 {
    args[0].mul_add(args[1], args[2])
}

fn fmsub(args: &[f64]) -> f64 {
    args[0].mul_add(args[1], -args[2])
}

fn fnmadd(args: &[f64]) -> f64 {
    (-args[0]).mul_add(args[1], args[2])
}

fn fnmsub(args: &[f64]) -> f64 {
    (-args[0]).mul_add(args[1], -args[2])
}

fn fma_ops(suffix: &str, ty: fpcore::FpType, cost: f64) -> Vec<Operator> {
    let t3 = [ty, ty, ty];
    vec![
        Operator::native(
            &format!("fmadd.{suffix}"),
            &t3,
            ty,
            "(fma a0 a1 a2)",
            cost,
            fmadd,
        ),
        Operator::native(
            &format!("fmsub.{suffix}"),
            &t3,
            ty,
            "(- (* a0 a1) a2)",
            cost,
            fmsub,
        ),
        Operator::native(
            &format!("fnmadd.{suffix}"),
            &t3,
            ty,
            "(- a2 (* a0 a1))",
            cost,
            fnmadd,
        ),
        Operator::native(
            &format!("fnmsub.{suffix}"),
            &t3,
            ty,
            "(- (- (* a0 a1)) a2)",
            cost,
            fnmsub,
        ),
    ]
}

fn vector_arith(suffix: &str, ty: fpcore::FpType, div_cost: f64, sqrt_cost: f64) -> Vec<Operator> {
    let t1 = [ty];
    let t2 = [ty, ty];
    vec![
        Operator::emulated(&format!("+.{suffix}"), &t2, ty, "(+ a0 a1)", 4.0),
        Operator::emulated(&format!("-.{suffix}"), &t2, ty, "(- a0 a1)", 4.0),
        Operator::emulated(&format!("*.{suffix}"), &t2, ty, "(* a0 a1)", 4.0),
        Operator::emulated(&format!("/.{suffix}"), &t2, ty, "(/ a0 a1)", div_cost),
        Operator::emulated(&format!("sqrt.{suffix}"), &t1, ty, "(sqrt a0)", sqrt_cost),
        Operator::emulated(&format!("fabs.{suffix}"), &t1, ty, "(fabs a0)", 1.0),
        Operator::emulated(&format!("min.{suffix}"), &t2, ty, "(fmin a0 a1)", 4.0),
        Operator::emulated(&format!("max.{suffix}"), &t2, ty, "(fmax a0 a1)", 4.0),
    ]
}

/// Builds the AVX target description.
pub fn target() -> Target {
    let mut ops = Vec::new();
    // Latencies from Fog's tables: divps 11, divpd 13, sqrtps 12, sqrtpd 18,
    // rcpps/rsqrtps 4, FMA 4.
    ops.extend(vector_arith("f32", Binary32, 11.0, 12.0));
    ops.extend(vector_arith("f64", Binary64, 13.0, 18.0));
    ops.extend(fma_ops("f32", Binary32, 4.0));
    ops.extend(fma_ops("f64", Binary64, 4.0));
    ops.push(Operator::native(
        "rcp.f32",
        &[Binary32],
        Binary32,
        "(/ 1 a0)",
        4.0,
        rcp,
    ));
    ops.push(Operator::native(
        "rsqrt.f32",
        &[Binary32],
        Binary32,
        "(/ 1 (sqrt a0))",
        4.0,
        rsqrt,
    ));
    // Precision conversions (cvtps2pd / cvtpd2ps).
    ops.push(Operator::emulated(
        "cast64.f32",
        &[Binary32],
        Binary64,
        "a0",
        2.0,
    ));
    ops.push(Operator::emulated(
        "cast32.f64",
        &[Binary64],
        Binary32,
        "a0",
        2.0,
    ));

    Target::new(
        "avx",
        "x86 AVX vector extensions: FMA variants, rcpps/rsqrtps, masked conditionals, no transcendentals",
    )
    .with_if_style(IfCostStyle::Vector, 5.0)
    .with_leaf_costs(1.0, 1.0)
    .with_cost_source("Fog [20]")
    .with_operators(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_fma_variants_and_no_negation() {
        let t = target();
        for name in [
            "fmadd.f64",
            "fmsub.f64",
            "fnmadd.f64",
            "fnmsub.f64",
            "fmadd.f32",
        ] {
            assert!(t.find_operator(name).is_some(), "missing {name}");
        }
        assert!(
            t.find_operator("neg.f64").is_none(),
            "AVX has no negation instruction"
        );
        assert!(t.find_operator("neg.f32").is_none());
        assert!(t.find_operator("exp.f64").is_none());
    }

    #[test]
    fn fma_variant_signs_are_correct() {
        let t = target();
        let go = |name: &str, a: f64, b: f64, c: f64| {
            t.operator(t.find_operator(name).unwrap())
                .execute(&[a, b, c])
        };
        assert_eq!(go("fmadd.f64", 2.0, 3.0, 4.0), 10.0);
        assert_eq!(go("fmsub.f64", 2.0, 3.0, 4.0), 2.0);
        assert_eq!(go("fnmadd.f64", 2.0, 3.0, 4.0), -2.0);
        assert_eq!(go("fnmsub.f64", 2.0, 3.0, 4.0), -10.0);
    }

    #[test]
    fn rcp_is_fast_but_inaccurate() {
        let t = target();
        let rcp_id = t.find_operator("rcp.f32").unwrap();
        let div_id = t.find_operator("/.f32").unwrap();
        let rcp_op = t.operator(rcp_id);
        let div_op = t.operator(div_id);
        assert!(
            rcp_op.cost < div_op.cost,
            "rcp must be cheaper than division"
        );
        let approx = rcp_op.execute(&[7.0]);
        let exact = div_op.execute(&[1.0, 7.0]);
        let rel = ((approx - exact) / exact).abs();
        assert!(rel > 0.0, "rcp should not be exact");
        assert!(rel < 2.0_f64.powi(-11), "rcp error must stay within ~2^-12");
    }

    #[test]
    fn rsqrt_approximates_reciprocal_square_root() {
        let t = target();
        let op = t.operator(t.find_operator("rsqrt.f32").unwrap());
        let approx = op.execute(&[4.0]);
        assert!((approx - 0.5).abs() < 1e-3);
    }

    #[test]
    fn casts_desugar_to_identity() {
        let t = target();
        let cast = t.operator(t.find_operator("cast32.f64").unwrap());
        assert_eq!(
            cast.instantiate_desugaring(&[fpcore::parse_expr("(+ x 1)").unwrap()]),
            fpcore::parse_expr("(+ x 1)").unwrap()
        );
        assert_eq!(cast.execute(&[1.0 / 3.0]), (1.0f32 / 3.0f32) as f64);
    }

    #[test]
    fn uses_vector_conditionals_and_fog_costs() {
        let t = target();
        assert_eq!(t.if_cost_style, IfCostStyle::Vector);
        assert_eq!(t.cost_source, "Fog [20]");
        // Double-precision division is slower than single (13 vs 11 cycles).
        let d32 = t.operator(t.find_operator("/.f32").unwrap()).cost;
        let d64 = t.operator(t.find_operator("/.f64").unwrap()).cost;
        assert!(d64 > d32);
    }
}
