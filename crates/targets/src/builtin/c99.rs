//! The `C99` target (Figure 6, row 4): scalar C with the full `math.h` library in
//! both binary64 and binary32, linked against the host libm.

use super::{basic_arith_ops, libm_ops, ArithCosts};
use crate::operator::{Impl, Operator, SweepImpl};
use crate::target::{IfCostStyle, Target};
use fpcore::eval::{apply_op1, apply_op2, apply_op3, sweep_op1, sweep_op2};
use fpcore::FpType::{Binary32, Binary64};
use fpcore::RealOp;

// The linked math functions route through `fpcore::eval`'s operator
// application, so they follow the vecmath/libm routing switch in lockstep
// with the emulated path: the scalar wrapper and the block-wide sweep execute
// the identical per-lane operation in every build configuration, which is
// what keeps the three evaluation engines bit-identical.
macro_rules! host1 {
    ($name:ident, $sweep:ident, $op:ident) => {
        fn $name(a: &[f64]) -> f64 {
            apply_op1(RealOp::$op, a[0])
        }
        fn $sweep(out: &mut [f64], a: &[f64]) {
            sweep_op1(RealOp::$op, out, a)
        }
    };
}

host1!(host_exp, sweep_exp, Exp);
host1!(host_log, sweep_log, Log);
host1!(host_sin, sweep_sin, Sin);
host1!(host_cos, sweep_cos, Cos);
host1!(host_tan, sweep_tan, Tan);
host1!(host_expm1, sweep_expm1, Expm1);
host1!(host_log1p, sweep_log1p, Log1p);
host1!(host_cbrt, sweep_cbrt, Cbrt);

fn host_pow(a: &[f64]) -> f64 {
    apply_op2(RealOp::Pow, a[0], a[1])
}

fn sweep_pow(out: &mut [f64], a: &[f64], b: &[f64]) {
    sweep_op2(RealOp::Pow, out, a, b);
}

fn host_hypot(a: &[f64]) -> f64 {
    apply_op2(RealOp::Hypot, a[0], a[1])
}

fn sweep_hypot(out: &mut [f64], a: &[f64], b: &[f64]) {
    sweep_op2(RealOp::Hypot, out, a, b);
}

fn host_fma(a: &[f64]) -> f64 {
    apply_op3(RealOp::Fma, a[0], a[1], a[2])
}

/// A linked operator's scalar function plus its optional block-wide form.
type Linked = (fn(&[f64]) -> f64, Option<SweepImpl>);

/// Replaces the implementation of selected emulated operators with direct host
/// math-library calls, modelling the "linked" column of Figure 6 for the C
/// target, and attaches the block-wide sweep forms the block evaluator
/// dispatches whole lane slices through.
fn link_against_host(ops: &mut [Operator]) {
    for op in ops.iter_mut() {
        let base = op.name.split('.').next().unwrap_or("");
        let linked: Option<Linked> = match base {
            "exp" => Some((host_exp, Some(SweepImpl::Un(sweep_exp)))),
            "log" => Some((host_log, Some(SweepImpl::Un(sweep_log)))),
            "sin" => Some((host_sin, Some(SweepImpl::Un(sweep_sin)))),
            "cos" => Some((host_cos, Some(SweepImpl::Un(sweep_cos)))),
            "tan" => Some((host_tan, Some(SweepImpl::Un(sweep_tan)))),
            "expm1" => Some((host_expm1, Some(SweepImpl::Un(sweep_expm1)))),
            "log1p" => Some((host_log1p, Some(SweepImpl::Un(sweep_log1p)))),
            "cbrt" => Some((host_cbrt, Some(SweepImpl::Un(sweep_cbrt)))),
            "pow" => Some((host_pow, Some(SweepImpl::Bin(sweep_pow)))),
            "hypot" => Some((host_hypot, Some(SweepImpl::Bin(sweep_hypot)))),
            "fma" => Some((host_fma, None)),
            _ => None,
        };
        if let Some((f, sweep)) = linked {
            op.implementation = Impl::Native(f);
            op.sweep = sweep;
        }
    }
}

/// Builds the C99 target description.
pub fn target() -> Target {
    let mut ops = Vec::new();
    ops.extend(basic_arith_ops(
        Binary64,
        ArithCosts {
            simple: 1.0,
            div: 4.0,
            sqrt: 5.0,
        },
        true,
    ));
    ops.extend(basic_arith_ops(
        Binary32,
        ArithCosts {
            simple: 1.0,
            div: 3.0,
            sqrt: 4.0,
        },
        true,
    ));
    let mut libm64 = libm_ops(Binary64, 0.0, 1.0, true);
    let mut libm32 = libm_ops(Binary32, 0.0, 0.8, true);
    link_against_host(&mut libm64);
    link_against_host(&mut libm32);
    ops.extend(libm64);
    ops.extend(libm32);
    // Precision conversions are free-ish in C (a register move).
    ops.push(Operator::emulated(
        "cast64.f32",
        &[Binary32],
        Binary64,
        "a0",
        1.0,
    ));
    ops.push(Operator::emulated(
        "cast32.f64",
        &[Binary64],
        Binary32,
        "a0",
        1.0,
    ));

    Target::new(
        "c99",
        "Scalar C with the full math.h library at binary32 and binary64",
    )
    .with_if_style(IfCostStyle::Scalar, 1.0)
    .with_leaf_costs(0.5, 0.5)
    .with_cost_source("auto-tune")
    .with_operators(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_both_precisions_and_full_libm() {
        let t = target();
        for name in [
            "exp.f64",
            "exp.f32",
            "log1p.f64",
            "hypot.f64",
            "fma.f64",
            "pow.f32",
        ] {
            assert!(t.find_operator(name).is_some(), "missing {name}");
        }
        let (linked, emulated) = t.linked_emulated_counts();
        assert!(linked >= 10, "math.h should be linked");
        assert!(emulated >= 10, "basic arithmetic stays emulated");
    }

    #[test]
    fn linked_operators_route_through_operator_application() {
        // The linked functions must agree exactly with apply_op1 (vecmath by
        // default, host libm under --features libm-calls), so the tree walk,
        // scalar bytecode and block engines all see the same bits.
        let t = target();
        let exp = t.operator(t.find_operator("exp.f64").unwrap());
        assert!(exp.is_linked());
        assert!(exp.sweep.is_some(), "exp.f64 should have a block-wide form");
        assert_eq!(exp.execute(&[1.0]), apply_op1(RealOp::Exp, 1.0));
        let log1p32 = t.operator(t.find_operator("log1p.f32").unwrap());
        assert_eq!(
            log1p32.execute(&[0.5]),
            (apply_op1(RealOp::Log1p, 0.5) as f32) as f64
        );
    }

    #[test]
    fn transcendentals_cost_much_more_than_arithmetic() {
        let t = target();
        let add = t.operator(t.find_operator("+.f64").unwrap()).cost;
        let pow = t.operator(t.find_operator("pow.f64").unwrap()).cost;
        assert!(pow > 20.0 * add);
    }
}
