//! The `C99` target (Figure 6, row 4): scalar C with the full `math.h` library in
//! both binary64 and binary32, linked against the host libm.

use super::{basic_arith_ops, libm_ops, ArithCosts};
use crate::operator::{Impl, Operator};
use crate::target::{IfCostStyle, Target};
use fpcore::FpType::{Binary32, Binary64};

macro_rules! host1 {
    ($name:ident, $method:ident) => {
        fn $name(a: &[f64]) -> f64 {
            a[0].$method()
        }
    };
}

host1!(host_exp, exp);
host1!(host_log, ln);
host1!(host_sin, sin);
host1!(host_cos, cos);
host1!(host_tan, tan);
host1!(host_expm1, exp_m1);
host1!(host_log1p, ln_1p);
host1!(host_cbrt, cbrt);

fn host_pow(a: &[f64]) -> f64 {
    a[0].powf(a[1])
}

fn host_hypot(a: &[f64]) -> f64 {
    a[0].hypot(a[1])
}

fn host_fma(a: &[f64]) -> f64 {
    a[0].mul_add(a[1], a[2])
}

/// Replaces the implementation of selected emulated operators with direct host
/// libm calls, modelling the "linked" column of Figure 6 for the C target.
fn link_against_host(ops: &mut [Operator]) {
    for op in ops.iter_mut() {
        let base = op.name.split('.').next().unwrap_or("");
        let linked: Option<fn(&[f64]) -> f64> = match base {
            "exp" => Some(host_exp),
            "log" => Some(host_log),
            "sin" => Some(host_sin),
            "cos" => Some(host_cos),
            "tan" => Some(host_tan),
            "expm1" => Some(host_expm1),
            "log1p" => Some(host_log1p),
            "cbrt" => Some(host_cbrt),
            "pow" => Some(host_pow),
            "hypot" => Some(host_hypot),
            "fma" => Some(host_fma),
            _ => None,
        };
        if let Some(f) = linked {
            op.implementation = Impl::Native(f);
        }
    }
}

/// Builds the C99 target description.
pub fn target() -> Target {
    let mut ops = Vec::new();
    ops.extend(basic_arith_ops(
        Binary64,
        ArithCosts {
            simple: 1.0,
            div: 4.0,
            sqrt: 5.0,
        },
        true,
    ));
    ops.extend(basic_arith_ops(
        Binary32,
        ArithCosts {
            simple: 1.0,
            div: 3.0,
            sqrt: 4.0,
        },
        true,
    ));
    let mut libm64 = libm_ops(Binary64, 0.0, 1.0, true);
    let mut libm32 = libm_ops(Binary32, 0.0, 0.8, true);
    link_against_host(&mut libm64);
    link_against_host(&mut libm32);
    ops.extend(libm64);
    ops.extend(libm32);
    // Precision conversions are free-ish in C (a register move).
    ops.push(Operator::emulated(
        "cast64.f32",
        &[Binary32],
        Binary64,
        "a0",
        1.0,
    ));
    ops.push(Operator::emulated(
        "cast32.f64",
        &[Binary64],
        Binary32,
        "a0",
        1.0,
    ));

    Target::new(
        "c99",
        "Scalar C with the full math.h library at binary32 and binary64",
    )
    .with_if_style(IfCostStyle::Scalar, 1.0)
    .with_leaf_costs(0.5, 0.5)
    .with_cost_source("auto-tune")
    .with_operators(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_both_precisions_and_full_libm() {
        let t = target();
        for name in [
            "exp.f64",
            "exp.f32",
            "log1p.f64",
            "hypot.f64",
            "fma.f64",
            "pow.f32",
        ] {
            assert!(t.find_operator(name).is_some(), "missing {name}");
        }
        let (linked, emulated) = t.linked_emulated_counts();
        assert!(linked >= 10, "math.h should be linked");
        assert!(emulated >= 10, "basic arithmetic stays emulated");
    }

    #[test]
    fn linked_operators_call_host_libm() {
        let t = target();
        let exp = t.operator(t.find_operator("exp.f64").unwrap());
        assert!(exp.is_linked());
        assert_eq!(exp.execute(&[1.0]), 1.0f64.exp());
        let log1p32 = t.operator(t.find_operator("log1p.f32").unwrap());
        assert_eq!(log1p32.execute(&[0.5]), (0.5f64.ln_1p() as f32) as f64);
    }

    #[test]
    fn transcendentals_cost_much_more_than_arithmetic() {
        let t = target();
        let add = t.operator(t.find_operator("+.f64").unwrap()).cost;
        let pow = t.operator(t.find_operator("pow.f64").unwrap()).cost;
        assert!(pow > 20.0 * add);
    }
}
