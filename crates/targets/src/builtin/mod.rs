//! The nine built-in target descriptions evaluated in the paper (Figure 6):
//! three hardware ISAs (Arith, Arith+FMA, AVX), three programming languages
//! (C99, Python, Julia), and three libraries (NumPy, vdt, fdlibm).

pub mod arith;
pub mod arith_fma;
pub mod avx;
pub mod c99;
pub mod fdlibm;
pub mod julia;
pub mod numpy;
pub mod python;
pub mod vdt;

use crate::operator::Operator;
use crate::target::Target;
use fpcore::FpType;

/// Every built-in target, in the order of Figure 6.
pub fn all_targets() -> Vec<Target> {
    vec![
        arith::target(),
        arith_fma::target(),
        avx::target(),
        c99::target(),
        python::target(),
        julia::target(),
        numpy::target(),
        vdt::target(),
        fdlibm::target(),
    ]
}

/// Looks up a built-in target by name.
pub fn by_name(name: &str) -> Option<Target> {
    all_targets().into_iter().find(|t| t.name == name)
}

fn suffix(ty: FpType) -> &'static str {
    match ty {
        FpType::Binary32 => "f32",
        FpType::Binary64 => "f64",
        FpType::Bool => "bool",
    }
}

/// Per-operator costs for the basic arithmetic group.
#[derive(Clone, Copy, Debug)]
pub struct ArithCosts {
    /// Cost of `+`, `-`, `*`, negation and `fabs`.
    pub simple: f64,
    /// Cost of division.
    pub div: f64,
    /// Cost of square root.
    pub sqrt: f64,
}

/// The basic arithmetic operators (`+ - * / neg fabs sqrt`) at a given type.
pub(crate) fn basic_arith_ops(ty: FpType, costs: ArithCosts, include_neg: bool) -> Vec<Operator> {
    let s = suffix(ty);
    let bb = [ty, ty];
    let b = [ty];
    let mut ops = vec![
        Operator::emulated(&format!("+.{s}"), &bb, ty, "(+ a0 a1)", costs.simple),
        Operator::emulated(&format!("-.{s}"), &bb, ty, "(- a0 a1)", costs.simple),
        Operator::emulated(&format!("*.{s}"), &bb, ty, "(* a0 a1)", costs.simple),
        Operator::emulated(&format!("/.{s}"), &bb, ty, "(/ a0 a1)", costs.div),
        Operator::emulated(&format!("fabs.{s}"), &b, ty, "(fabs a0)", costs.simple),
        Operator::emulated(&format!("sqrt.{s}"), &b, ty, "(sqrt a0)", costs.sqrt),
    ];
    if include_neg {
        ops.push(Operator::emulated(
            &format!("neg.{s}"),
            &b,
            ty,
            "(- a0)",
            costs.simple,
        ));
    }
    ops
}

/// The C `math.h`-style library functions at a given type. `base` is added to
/// every cost and `scale` multiplies the per-function relative weights, which
/// lets targets with large interpretation overheads (Python, NumPy) flatten the
/// cost distribution, as observed in the paper.
pub(crate) fn libm_ops(ty: FpType, base: f64, scale: f64, include_fma: bool) -> Vec<Operator> {
    let s = suffix(ty);
    let b = [ty];
    let bb = [ty, ty];
    let bbb = [ty, ty, ty];
    let c = |w: f64| base + w * scale;
    let mut ops = vec![
        Operator::emulated(&format!("exp.{s}"), &b, ty, "(exp a0)", c(40.0)),
        Operator::emulated(&format!("exp2.{s}"), &b, ty, "(exp2 a0)", c(40.0)),
        Operator::emulated(&format!("expm1.{s}"), &b, ty, "(expm1 a0)", c(40.0)),
        Operator::emulated(&format!("log.{s}"), &b, ty, "(log a0)", c(35.0)),
        Operator::emulated(&format!("log2.{s}"), &b, ty, "(log2 a0)", c(35.0)),
        Operator::emulated(&format!("log10.{s}"), &b, ty, "(log10 a0)", c(35.0)),
        Operator::emulated(&format!("log1p.{s}"), &b, ty, "(log1p a0)", c(40.0)),
        Operator::emulated(&format!("pow.{s}"), &bb, ty, "(pow a0 a1)", c(80.0)),
        Operator::emulated(&format!("sin.{s}"), &b, ty, "(sin a0)", c(45.0)),
        Operator::emulated(&format!("cos.{s}"), &b, ty, "(cos a0)", c(45.0)),
        Operator::emulated(&format!("tan.{s}"), &b, ty, "(tan a0)", c(55.0)),
        Operator::emulated(&format!("asin.{s}"), &b, ty, "(asin a0)", c(50.0)),
        Operator::emulated(&format!("acos.{s}"), &b, ty, "(acos a0)", c(50.0)),
        Operator::emulated(&format!("atan.{s}"), &b, ty, "(atan a0)", c(55.0)),
        Operator::emulated(&format!("atan2.{s}"), &bb, ty, "(atan2 a0 a1)", c(70.0)),
        Operator::emulated(&format!("sinh.{s}"), &b, ty, "(sinh a0)", c(55.0)),
        Operator::emulated(&format!("cosh.{s}"), &b, ty, "(cosh a0)", c(55.0)),
        Operator::emulated(&format!("tanh.{s}"), &b, ty, "(tanh a0)", c(55.0)),
        Operator::emulated(&format!("asinh.{s}"), &b, ty, "(asinh a0)", c(60.0)),
        Operator::emulated(&format!("acosh.{s}"), &b, ty, "(acosh a0)", c(60.0)),
        Operator::emulated(&format!("atanh.{s}"), &b, ty, "(atanh a0)", c(60.0)),
        Operator::emulated(&format!("cbrt.{s}"), &b, ty, "(cbrt a0)", c(50.0)),
        Operator::emulated(&format!("hypot.{s}"), &bb, ty, "(hypot a0 a1)", c(60.0)),
        Operator::emulated(&format!("fmin.{s}"), &bb, ty, "(fmin a0 a1)", c(2.0)),
        Operator::emulated(&format!("fmax.{s}"), &bb, ty, "(fmax a0 a1)", c(2.0)),
        Operator::emulated(&format!("fmod.{s}"), &bb, ty, "(fmod a0 a1)", c(20.0)),
        Operator::emulated(&format!("fdim.{s}"), &bb, ty, "(fdim a0 a1)", c(3.0)),
        Operator::emulated(
            &format!("copysign.{s}"),
            &bb,
            ty,
            "(copysign a0 a1)",
            c(2.0),
        ),
        Operator::emulated(&format!("floor.{s}"), &b, ty, "(floor a0)", c(2.0)),
        Operator::emulated(&format!("ceil.{s}"), &b, ty, "(ceil a0)", c(2.0)),
        Operator::emulated(&format!("round.{s}"), &b, ty, "(round a0)", c(3.0)),
        Operator::emulated(&format!("trunc.{s}"), &b, ty, "(trunc a0)", c(2.0)),
    ];
    if include_fma {
        ops.push(Operator::emulated(
            &format!("fma.{s}"),
            &bbb,
            ty,
            "(fma a0 a1 a2)",
            c(1.0),
        ));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::IfCostStyle;

    #[test]
    fn all_nine_targets_exist() {
        let targets = all_targets();
        assert_eq!(targets.len(), 9);
        let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "arith",
                "arith-fma",
                "avx",
                "c99",
                "python",
                "julia",
                "numpy",
                "vdt",
                "fdlibm"
            ]
        );
        for t in &targets {
            assert!(
                !t.operators.is_empty(),
                "target {} has no operators",
                t.name
            );
            assert!(!t.description.is_empty());
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("avx").is_some());
        assert!(by_name("julia").is_some());
        assert!(by_name("riscv").is_none());
    }

    #[test]
    fn figure6_scalar_vector_split_matches_paper() {
        // AVX and NumPy are vector-style; everything else is scalar-style.
        for t in all_targets() {
            let expected = if t.name == "avx" || t.name == "numpy" {
                IfCostStyle::Vector
            } else {
                IfCostStyle::Scalar
            };
            assert_eq!(t.if_cost_style, expected, "target {}", t.name);
        }
    }

    #[test]
    fn figure6_linked_vs_emulated_matches_paper() {
        // AVX and vdt link against (emulations of) real approximate instructions;
        // the language targets only use accurate library functions and are
        // emulated. fdlibm links its internal subroutine implementations.
        for t in all_targets() {
            let (linked, _) = t.linked_emulated_counts();
            match t.name.as_str() {
                "avx" | "vdt" | "fdlibm" | "c99" => {
                    assert!(linked > 0, "target {} should have linked operators", t.name);
                }
                _ => assert_eq!(linked, 0, "target {} should be fully emulated", t.name),
            }
        }
    }

    #[test]
    fn hardware_targets_lack_transcendentals() {
        for name in ["arith", "arith-fma", "avx"] {
            let t = by_name(name).unwrap();
            assert!(
                t.operators
                    .iter()
                    .all(|o| !o.name.starts_with("exp.") && !o.name.starts_with("sin.")),
                "{name} must not offer transcendental functions"
            );
        }
        for name in ["c99", "python", "julia", "numpy", "vdt", "fdlibm"] {
            let t = by_name(name).unwrap();
            assert!(
                t.operators.iter().any(|o| o.name.starts_with("exp.")),
                "{name} must offer transcendental functions"
            );
        }
    }

    #[test]
    fn only_c_and_avx_offer_binary32() {
        use fpcore::FpType;
        for t in all_targets() {
            let has32 = t.supported_types().contains(&FpType::Binary32);
            let expected = matches!(t.name.as_str(), "avx" | "c99" | "vdt");
            assert_eq!(has32, expected, "target {}", t.name);
        }
    }

    #[test]
    fn python_lacks_fma_but_julia_has_it() {
        assert!(by_name("python")
            .unwrap()
            .find_operator("fma.f64")
            .is_none());
        assert!(by_name("julia").unwrap().find_operator("fma.f64").is_some());
    }

    #[test]
    fn every_operator_executes_on_benign_input() {
        for t in all_targets() {
            for op in &t.operators {
                let args: Vec<f64> = (0..op.arity()).map(|i| 0.5 + i as f64 * 0.25).collect();
                let out = op.execute(&args);
                assert!(
                    out.is_finite() || out.is_nan(),
                    "operator {} of {} produced a strange value",
                    op.name,
                    t.name
                );
            }
        }
    }

    #[test]
    fn every_operator_cost_is_positive() {
        for t in all_targets() {
            for op in &t.operators {
                assert!(
                    op.cost > 0.0,
                    "operator {} of {} has non-positive cost",
                    op.name,
                    t.name
                );
            }
        }
    }
}
