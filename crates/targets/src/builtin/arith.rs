//! The `Arith` target: bare double-precision arithmetic (`+ - * / sqrt |x|`),
//! no transcendental functions (Figure 6, row 1).

use super::{basic_arith_ops, ArithCosts};
use crate::target::{IfCostStyle, Target};
use fpcore::FpType;

/// Costs used by the Arith family (representative auto-tuned values).
pub const COSTS: ArithCosts = ArithCosts {
    simple: 1.0,
    div: 4.0,
    sqrt: 5.0,
};

/// Builds the Arith target description.
pub fn target() -> Target {
    Target::new(
        "arith",
        "Bare binary64 arithmetic: + - * / sqrt fabs (no transcendental functions)",
    )
    .with_if_style(IfCostStyle::Scalar, 1.0)
    .with_leaf_costs(0.5, 0.5)
    .with_cost_source("auto-tune")
    .with_operators(basic_arith_ops(FpType::Binary64, COSTS, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_the_basic_operators() {
        let t = target();
        assert_eq!(t.operators.len(), 7);
        for name in [
            "+.f64", "-.f64", "*.f64", "/.f64", "sqrt.f64", "fabs.f64", "neg.f64",
        ] {
            assert!(t.find_operator(name).is_some(), "missing {name}");
        }
        assert!(t.find_operator("fma.f64").is_none());
        assert!(t.find_operator("exp.f64").is_none());
    }

    #[test]
    fn division_costs_more_than_addition() {
        let t = target();
        let add = t.operator(t.find_operator("+.f64").unwrap()).cost;
        let div = t.operator(t.find_operator("/.f64").unwrap()).cost;
        assert!(div > add);
    }
}
