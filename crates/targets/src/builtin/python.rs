//! The `Python` target (Figure 6, row 5): CPython 3.10 with the `math` module.
//! Binary64 only, no `fma`, and a large interpretation overhead that flattens the
//! cost distribution (the paper notes operator costs are "closely clustered").

use super::{basic_arith_ops, libm_ops, ArithCosts};
use crate::target::{IfCostStyle, Target};
use fpcore::FpType::Binary64;

/// The fixed interpretation overhead added to every operator.
pub const INTERPRETER_OVERHEAD: f64 = 20.0;

/// Builds the Python target description.
pub fn target() -> Target {
    let mut ops = Vec::new();
    ops.extend(basic_arith_ops(
        Binary64,
        ArithCosts {
            simple: INTERPRETER_OVERHEAD + 1.0,
            div: INTERPRETER_OVERHEAD + 2.0,
            sqrt: INTERPRETER_OVERHEAD + 3.0,
        },
        true,
    ));
    // math module functions: the per-call overhead dominates, so the relative
    // spread between cheap and expensive functions is small (scale 0.15).
    ops.extend(libm_ops(Binary64, INTERPRETER_OVERHEAD, 0.15, false));

    Target::new(
        "python",
        "CPython 3.10 with the math module: binary64 only, no fma, flat cost profile",
    )
    .with_if_style(IfCostStyle::Scalar, INTERPRETER_OVERHEAD)
    .with_leaf_costs(INTERPRETER_OVERHEAD * 0.5, INTERPRETER_OVERHEAD * 0.5)
    .with_cost_source("auto-tune")
    .with_operators(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary64_only_and_no_fma() {
        let t = target();
        assert_eq!(t.supported_types(), vec![Binary64]);
        assert!(t.find_operator("fma.f64").is_none());
        assert!(t.find_operator("hypot.f64").is_some());
    }

    #[test]
    fn costs_are_closely_clustered() {
        let t = target();
        let add = t.operator(t.find_operator("+.f64").unwrap()).cost;
        let sin = t.operator(t.find_operator("sin.f64").unwrap()).cost;
        // In C the ratio is ~45x; in Python the interpreter overhead keeps it small.
        assert!(
            sin / add < 2.0,
            "Python costs should be flat (got ratio {})",
            sin / add
        );
    }
}
