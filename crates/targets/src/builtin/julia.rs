//! The `Julia` target (Figure 6, row 6): Julia 1.10 `Base` math. Binary64, a rich
//! set of high-accuracy helper functions (`sind`, `cosd`, `deg2rad`, `abs2`,
//! `log1p`, `hypot`, ...), moderate call overhead.

use super::{basic_arith_ops, libm_ops, ArithCosts};
use crate::operator::Operator;
use crate::target::{IfCostStyle, Target};
use fpcore::FpType::Binary64;

/// Julia's per-call overhead (smaller than Python's, larger than C's).
pub const CALL_OVERHEAD: f64 = 4.0;

/// Builds the Julia target description.
pub fn target() -> Target {
    let b = [Binary64];
    let bb = [Binary64, Binary64];
    let bbb = [Binary64, Binary64, Binary64];
    let mut ops = Vec::new();
    ops.extend(basic_arith_ops(
        Binary64,
        ArithCosts {
            simple: CALL_OVERHEAD + 1.0,
            div: CALL_OVERHEAD + 3.0,
            sqrt: CALL_OVERHEAD + 4.0,
        },
        true,
    ));
    ops.extend(libm_ops(Binary64, CALL_OVERHEAD, 0.4, false));
    // Base.muladd / fma.
    ops.push(Operator::emulated(
        "fma.f64",
        &bbb,
        Binary64,
        "(fma a0 a1 a2)",
        CALL_OVERHEAD + 1.0,
    ));
    // Julia's extended helper functions. The degree-based trigonometric functions
    // multiply by π/180 in higher internal precision, which is why they are more
    // accurate than composing `sin` with an explicit conversion.
    ops.extend(vec![
        Operator::emulated(
            "sind.f64",
            &b,
            Binary64,
            "(sin (* a0 (/ PI 180)))",
            CALL_OVERHEAD + 20.0,
        ),
        Operator::emulated(
            "cosd.f64",
            &b,
            Binary64,
            "(cos (* a0 (/ PI 180)))",
            CALL_OVERHEAD + 20.0,
        ),
        Operator::emulated(
            "tand.f64",
            &b,
            Binary64,
            "(tan (* a0 (/ PI 180)))",
            CALL_OVERHEAD + 24.0,
        ),
        Operator::emulated(
            "deg2rad.f64",
            &b,
            Binary64,
            "(* a0 (/ PI 180))",
            CALL_OVERHEAD + 1.0,
        ),
        Operator::emulated(
            "rad2deg.f64",
            &b,
            Binary64,
            "(* a0 (/ 180 PI))",
            CALL_OVERHEAD + 1.0,
        ),
        Operator::emulated("abs2.f64", &b, Binary64, "(* a0 a0)", CALL_OVERHEAD + 1.0),
        Operator::emulated(
            "exp10.f64",
            &b,
            Binary64,
            "(pow 10 a0)",
            CALL_OVERHEAD + 17.0,
        ),
        Operator::emulated(
            "sinpi.f64",
            &b,
            Binary64,
            "(sin (* PI a0))",
            CALL_OVERHEAD + 20.0,
        ),
        Operator::emulated(
            "cospi.f64",
            &b,
            Binary64,
            "(cos (* PI a0))",
            CALL_OVERHEAD + 20.0,
        ),
        Operator::emulated(
            "hypot3.f64",
            &bbb,
            Binary64,
            "(sqrt (+ (* a0 a0) (+ (* a1 a1) (* a2 a2))))",
            CALL_OVERHEAD + 30.0,
        ),
        Operator::emulated(
            "clamp.f64",
            &bbb,
            Binary64,
            "(fmin (fmax a0 a1) a2)",
            CALL_OVERHEAD + 2.0,
        ),
    ]);
    let _ = bb;

    Target::new(
        "julia",
        "Julia 1.10 Base math: binary64, extended high-accuracy helpers (sind, log1p, hypot, ...)",
    )
    .with_if_style(IfCostStyle::Scalar, 2.0)
    .with_leaf_costs(1.0, 1.0)
    .with_cost_source("auto-tune")
    .with_operators(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_degree_trig_and_helpers() {
        let t = target();
        for name in [
            "sind.f64",
            "cosd.f64",
            "deg2rad.f64",
            "abs2.f64",
            "log1p.f64",
            "hypot.f64",
            "fma.f64",
            "sinpi.f64",
        ] {
            assert!(t.find_operator(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn sind_computes_sine_of_degrees() {
        let t = target();
        let sind = t.operator(t.find_operator("sind.f64").unwrap());
        assert!((sind.execute(&[90.0]) - 1.0).abs() < 1e-12);
        assert!(sind.execute(&[30.0]) - 0.5 < 1e-12);
        let abs2 = t.operator(t.find_operator("abs2.f64").unwrap());
        assert_eq!(abs2.execute(&[-3.0]), 9.0);
        let d2r = t.operator(t.find_operator("deg2rad.f64").unwrap());
        assert!((d2r.execute(&[180.0]) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn cost_spread_is_between_python_and_c() {
        let t = target();
        let add = t.operator(t.find_operator("+.f64").unwrap()).cost;
        let sin = t.operator(t.find_operator("sin.f64").unwrap()).cost;
        let ratio = sin / add;
        assert!(ratio > 2.0 && ratio < 20.0, "got ratio {ratio}");
    }
}
