//! The `Arith+FMA` target: the Arith operators plus a fused multiply-add
//! (Figure 6, row 2). FMA is both faster and more accurate than a separate
//! multiply and add, which is exactly the kind of target-specific fact Chassis
//! exploits.

use super::arith;
use crate::operator::Operator;
use crate::target::Target;
use fpcore::FpType::Binary64;

/// Builds the Arith+FMA target description.
pub fn target() -> Target {
    let mut t = Target::new("arith-fma", "Binary64 arithmetic plus fused multiply-add")
        .with_if_style(crate::target::IfCostStyle::Scalar, 1.0)
        .with_leaf_costs(0.5, 0.5)
        .with_cost_source("auto-tune");
    t.import(&arith::target());
    t.add_operator(Operator::emulated(
        "fma.f64",
        &[Binary64, Binary64, Binary64],
        Binary64,
        "(fma a0 a1 a2)",
        1.0,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extends_arith_with_fma() {
        let t = target();
        assert_eq!(t.operators.len(), arith::target().operators.len() + 1);
        let fma = t.find_operator("fma.f64").unwrap();
        assert_eq!(t.operator(fma).execute(&[2.0, 3.0, 4.0]), 10.0);
    }

    #[test]
    fn fma_is_single_rounded() {
        let t = target();
        let fma = t.find_operator("fma.f64").unwrap();
        // 1 + 2^-80 is not representable; fma keeps the low part when it cancels.
        let a = 1.0 + 2.0_f64.powi(-30);
        let fused = t.operator(fma).execute(&[a, a, -1.0]);
        let unfused = a * a - 1.0;
        assert_ne!(fused, unfused, "fma must not double-round");
    }
}
