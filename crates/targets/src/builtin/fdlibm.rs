//! The `fdlibm` target (Figure 6, row 9): Sun's freely distributable libm, which
//! exposes internal subcomponents of its implementations as extra operators.
//! The flagship example from the paper is `log1pmd(x) = log(1+x) − log(1−x)`,
//! the kernel that `log` itself is built on after range reduction; calling it
//! directly is both faster and more accurate than composing two logarithms.

use super::c99;
use crate::operator::Operator;
use crate::target::{IfCostStyle, Target};
use fpcore::FpType::Binary64;

fn log1pmd(a: &[f64]) -> f64 {
    // log(1+x) − log(1−x), evaluated the way fdlibm's kernel does: through the
    // atanh identity 2·atanh(x), which avoids cancellation for small x.
    2.0 * a[0].atanh()
}

fn log_kernel(a: &[f64]) -> f64 {
    // The polynomial kernel log(1+s) - s + s^2/2 used inside fdlibm's log; we
    // expose it with its mathematical meaning.
    (1.0 + a[0]).ln() - a[0] + a[0] * a[0] / 2.0
}

/// Builds the fdlibm target description.
pub fn target() -> Target {
    let b = [Binary64];
    let mut t = Target::new(
        "fdlibm",
        "Sun fdlibm: C math library whose internal kernels (log1pmd, ...) are exposed as operators",
    )
    .with_if_style(IfCostStyle::Scalar, 1.0)
    .with_leaf_costs(0.5, 0.5)
    .with_cost_source("auto-tune");
    // fdlibm is a C library: import the scalar C target but keep only binary64
    // operators (fdlibm is double-precision).
    let c = c99::target();
    for op in &c.operators {
        if op
            .arg_types
            .iter()
            .chain(std::iter::once(&op.ret_type))
            .all(|ty| *ty == Binary64)
        {
            t.add_operator(op.clone());
        }
    }
    // Library-internal subroutines exposed as first-class operators.
    t.add_operator(Operator::native(
        "log1pmd.f64",
        &b,
        Binary64,
        "(- (log1p a0) (log1p (- a0)))",
        40.0,
        log1pmd,
    ));
    t.add_operator(Operator::native(
        "log_kernel.f64",
        &b,
        Binary64,
        "(+ (- (log1p a0) a0) (/ (* a0 a0) 2))",
        25.0,
        log_kernel,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposes_internal_kernels() {
        let t = target();
        assert!(t.find_operator("log1pmd.f64").is_some());
        assert!(t.find_operator("log_kernel.f64").is_some());
        assert!(t.find_operator("log.f64").is_some());
    }

    #[test]
    fn log1pmd_matches_its_desugaring() {
        let t = target();
        let op = t.operator(t.find_operator("log1pmd.f64").unwrap());
        for x in [1e-8, 0.1, 0.5, 0.9, -0.3] {
            let direct = op.execute(&[x]);
            let composed = x.ln_1p() - (-x).ln_1p();
            let scale = composed.abs().max(1e-300);
            assert!(
                ((direct - composed) / scale).abs() < 1e-9,
                "log1pmd({x}): {direct} vs {composed}"
            );
        }
    }

    #[test]
    fn log1pmd_is_cheaper_than_two_log1p_calls() {
        let t = target();
        let kernel = t.operator(t.find_operator("log1pmd.f64").unwrap()).cost;
        let log1p = t.operator(t.find_operator("log1p.f64").unwrap()).cost;
        assert!(kernel < 2.0 * log1p);
    }

    #[test]
    fn binary64_only() {
        let t = target();
        assert_eq!(t.supported_types(), vec![Binary64]);
        assert!(t.find_operator("exp.f32").is_none());
    }
}
