//! Structure-of-arrays block execution for compiled float programs.
//!
//! The scalar bytecode engine ([`mod@crate::compile`]) already amortizes
//! compilation across a batch, but it still dispatches one instruction per
//! *point*: the `match` over [`Instr`] runs
//! `instrs × points` times, and every point arrives as its own heap-allocated
//! `Vec<f64>` row. This module turns both costs columnar:
//!
//! * [`Columns`] stores a batch of points as one contiguous `f64` column per
//!   variable (structure of arrays, no per-point `Vec`s), so a block of a
//!   variable's values is a single slice;
//! * [`BlockRegs`] is a columnar register file — one lane per point in the
//!   block, `width` lanes per register, all in one flat slab — with the
//!   constant pool broadcast across the lanes once at construction;
//! * [`Program::eval_block`] executes each instruction over the *whole block*
//!   before moving to the next: instruction dispatch runs `instrs ×
//!   ceil(points / width)` times, and every operation becomes a tight
//!   per-lane loop over contiguous slices that the compiler can
//!   auto-vectorize. Ragged block ends (a batch that is not a multiple of the
//!   block width) run the same loops at reduced width, degenerating to the
//!   scalar schedule at width 1.
//!
//! Bit identity is preserved by construction: every lane applies the *same*
//! host operation as the scalar engine ([`fpcore::eval::apply_op1`] and
//! friends; the specialised arithmetic loops compute the identical `a + b`
//! expressions), [`Instr::Select`] stays a pure per-lane select, and lanes
//! never interact — so block results are bit-identical to
//! [`Program::eval_point`] and to the tree walk at *any* block width, which
//! the differential tests and the `eval_throughput` CI gate both assert.
//!
//! One carve-out: **NaN sign and payload**. IEEE 754 §6.3 leaves both
//! unspecified for the NaN an arithmetic operation produces, and optimizing
//! codegen exploits that — LLVM may commute the operands of an
//! auto-vectorized `fmul`, changing which input NaN x86 propagates, so a
//! release build can flip a propagated NaN's sign bit at exactly
//! vector-multiple widths. The identity contract is therefore *semantic*
//! bits: exact bit equality for every non-NaN value (signed zeros and
//! subnormals included), any NaN equal to any NaN
//! ([`fpcore::eval::semantic_bits`]). Nothing downstream can see the
//! difference: every consumer of these engines (error bits, costs, regime
//! decisions) treats all NaNs alike.
//!
//! The slab layout leans on the program's register discipline: an
//! instruction's destination register is always strictly above its operands
//! (the verifier's `operand-order` rule — see `docs/PROGRAM_IR.md`), so
//! `split_at_mut(dst * width)` separates the write row from every row the
//! instruction reads, with no per-instruction bounds gymnastics. The slab is
//! `Program::num_regs` rows of `width` lanes — the per-worker working set
//! that liveness-driven register compaction
//! ([`crate::analysis::compact`]) shrinks, which is why production paths run
//! [`crate::analysis::compile_with_options`] programs here.

use crate::compile::{Instr, Program};
use crate::operator::round_to_type;
use fpcore::eval::{apply_op3, sweep_op1, sweep_op2};
use fpcore::{FpType, RealOp, Symbol};

/// Default lanes per block: big enough to amortize instruction dispatch and
/// fill SIMD lanes, small enough that the rows an instruction touches stay
/// cache-resident for realistic register counts. The `eval_throughput`
/// `--block-sizes` sweep picked this over 8/64/whole-batch on the builtin
/// corpus (256 was ~10% faster than 64 and within noise of whole-batch, and
/// it keeps the parallel work grain and scratch slab bounded).
pub const DEFAULT_BLOCK: usize = 256;

/// The block width a sweep over `len` points should use: the default block,
/// clamped so a short batch gets a single (non-empty) block. Every caller
/// that sizes a [`BlockRegs`] for a whole batch goes through this, so the
/// sizing policy lives in one place.
pub fn block_width_for(len: usize) -> usize {
    DEFAULT_BLOCK.min(len.max(1))
}

/// Largest native-operator arity the block evaluator's gather buffer supports
/// (mirrors the scalar engine's stack buffer).
const MAX_CALL_ARITY: usize = 8;

/// A batch of sample points in columnar (structure-of-arrays) layout: one
/// contiguous `f64` column per variable.
///
/// `col(v)[i]` is variable `v` of point `i`. The columnar layout is what the
/// block evaluator consumes directly — loading a block of a variable is a
/// `copy_from_slice`, not a strided gather over per-point `Vec`s.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Columns {
    n_vars: usize,
    n_points: usize,
    /// Column-major backing store: `data[var * n_points + point]`.
    data: Vec<f64>,
}

impl Columns {
    /// An empty batch over `n_vars` variables.
    pub fn new(n_vars: usize) -> Columns {
        Columns {
            n_vars,
            n_points: 0,
            data: Vec::new(),
        }
    }

    /// Transposes row-major points (`rows[i][v]` = variable `v` of point `i`)
    /// into columns. Rows shorter than `n_vars` are padded with NaN, matching
    /// the scalar engine's out-of-range variable load.
    pub fn from_rows(n_vars: usize, rows: &[Vec<f64>]) -> Columns {
        let n_points = rows.len();
        let mut data = vec![f64::NAN; n_vars * n_points];
        for (i, row) in rows.iter().enumerate() {
            for (v, &value) in row.iter().take(n_vars).enumerate() {
                data[v * n_points + i] = value;
            }
        }
        Columns {
            n_vars,
            n_points,
            data,
        }
    }

    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// True when the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Number of variables (columns) per point.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The contiguous column of variable `var` across all points.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn col(&self, var: usize) -> &[f64] {
        &self.data[var * self.n_points..(var + 1) * self.n_points]
    }

    /// Variable `var` of point `point`; NaN when `var` is out of range (the
    /// unbound-variable semantics shared with the scalar engine).
    ///
    /// # Panics
    ///
    /// Panics if `point >= len` (an out-of-range point would otherwise read
    /// another variable's column silently).
    pub fn value(&self, point: usize, var: usize) -> f64 {
        assert!(point < self.n_points, "point {point} out of range");
        if var < self.n_vars {
            self.data[var * self.n_points + point]
        } else {
            f64::NAN
        }
    }

    /// Point `point` as a freshly allocated row (diagnostics and tests; the
    /// hot paths never materialize rows).
    pub fn row(&self, point: usize) -> Vec<f64> {
        (0..self.n_vars).map(|v| self.value(point, v)).collect()
    }

    /// Iterates the batch as rows (allocating one `Vec` per point — for
    /// reporting and tests, not for evaluation loops).
    pub fn rows(&self) -> impl Iterator<Item = Vec<f64>> + '_ {
        (0..self.n_points).map(|i| self.row(i))
    }

    /// Splits the batch in two at point index `at` (`at` is clamped to the
    /// batch length): the first part keeps points `0..at`, the second gets
    /// `at..len`. Used to carve a sample into train and test sets.
    pub fn split_at(self, at: usize) -> (Columns, Columns) {
        let at = at.min(self.n_points);
        let mut head = Columns {
            n_vars: self.n_vars,
            n_points: at,
            data: Vec::with_capacity(self.n_vars * at),
        };
        let mut tail = Columns {
            n_vars: self.n_vars,
            n_points: self.n_points - at,
            data: Vec::with_capacity(self.n_vars * (self.n_points - at)),
        };
        for v in 0..self.n_vars {
            let col = &self.data[v * self.n_points..(v + 1) * self.n_points];
            head.data.extend_from_slice(&col[..at]);
            tail.data.extend_from_slice(&col[at..]);
        }
        (head, tail)
    }
}

/// A columnar register file: `width` lanes per register in one flat slab,
/// with the program's constant pool broadcast across the lanes of its
/// registers. Built by [`Program::new_block_regs`], reused across every block
/// of a sweep (and across sweeps) — the steady state allocates nothing.
#[derive(Clone, Debug)]
pub struct BlockRegs {
    width: usize,
    /// `slab[reg * width + lane]`; constant rows are never overwritten.
    slab: Vec<f64>,
}

impl BlockRegs {
    /// Lanes per block this register file supports.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Program {
    /// A columnar register file for blocks of up to `width` points, with the
    /// constant pool broadcast into its rows. Reuse it for every block: like
    /// the scalar register file, constants keep their rows and everything
    /// else is rewritten per block.
    pub fn new_block_regs(&self, width: usize) -> BlockRegs {
        let width = width.max(1);
        let mut slab = vec![0.0; self.n_regs * width];
        for &(reg, value) in &self.consts {
            slab[reg as usize * width..(reg as usize + 1) * width].fill(value);
        }
        BlockRegs { width, slab }
    }

    /// Evaluates points `start..start + out.len()` of `points` in one block,
    /// writing each point's result to the corresponding slot of `out`.
    ///
    /// `columns` comes from [`Program::bind_columns`] against the batch's
    /// variable layout. `out` must not be longer than the register file's
    /// width; shorter is fine (the ragged tail of a sweep runs the same code
    /// at reduced width). Results are bit-identical to calling
    /// [`Program::eval_point`] per point.
    ///
    /// # Panics
    ///
    /// Panics if `out` is wider than `regs` or the point range overruns the
    /// batch.
    pub fn eval_block(
        &self,
        columns: &[usize],
        points: &Columns,
        start: usize,
        regs: &mut BlockRegs,
        out: &mut [f64],
    ) {
        let w = out.len();
        assert!(w <= regs.width, "block of {w} exceeds register width");
        assert!(start + w <= points.len(), "block overruns the batch");
        let width = regs.width;

        // Load a block of every variable column into its register row.
        for (&(reg, _), &col) in self.vars.iter().zip(columns) {
            let row = &mut regs.slab[reg as usize * width..reg as usize * width + w];
            if col < points.n_vars() {
                row.copy_from_slice(&points.col(col)[start..start + w]);
            } else {
                row.fill(f64::NAN);
            }
        }

        // Instruction loop with the uniform-mask select fast path: when the
        // next instruction opens a select arm whose condition mask is
        // uniformly dead for this block, jump straight past the arm — the
        // compile-time privacy analysis proved nothing outside the range
        // reads its registers, so the skip is bit-identical by construction.
        let mut si = 0;
        let mut i = 0;
        while i < self.instrs.len() {
            while si < self.skips.len() && (self.skips[si].start as usize) < i {
                si += 1;
            }
            let mut jumped = false;
            while si < self.skips.len() && self.skips[si].start as usize == i {
                let sk = self.skips[si];
                let c0 = sk.cond as usize * width;
                let dead = regs.slab[c0..c0 + w]
                    .iter()
                    .all(|&c| (c != 0.0) == sk.dead_when);
                if dead {
                    i = sk.end as usize;
                    while si < self.skips.len() && (self.skips[si].start as usize) < i {
                        si += 1;
                    }
                    jumped = true;
                    break;
                }
                si += 1;
            }
            if jumped {
                continue;
            }
            let instr = &self.instrs[i];
            i += 1;
            let dst = instr.dst() as usize;
            // SSA: operands were allocated before `dst`, so they all live in
            // the lower half of this split.
            let (lo, hi) = regs.slab.split_at_mut(dst * width);
            let d = &mut hi[..w];
            let row = |r: u32| &lo[r as usize * width..r as usize * width + w];
            match *instr {
                Instr::Un { op, a, .. } => {
                    let a = row(a);
                    match op {
                        RealOp::Neg => {
                            for (d, &a) in d.iter_mut().zip(a) {
                                *d = -a;
                            }
                        }
                        RealOp::Fabs => {
                            for (d, &a) in d.iter_mut().zip(a) {
                                *d = a.abs();
                            }
                        }
                        RealOp::Sqrt => {
                            for (d, &a) in d.iter_mut().zip(a) {
                                *d = a.sqrt();
                            }
                        }
                        _ => {
                            // Transcendentals and everything else: the
                            // block-wide sweep (vecmath kernels where
                            // available, a per-lane loop otherwise) —
                            // bit-identical to per-lane apply_op1 by the
                            // pairing rule.
                            sweep_op1(op, d, a);
                        }
                    }
                }
                Instr::Bin { op, a, b, .. } => {
                    let (a, b) = (row(a), row(b));
                    match op {
                        RealOp::Add => {
                            for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
                                *d = a + b;
                            }
                        }
                        RealOp::Sub => {
                            for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
                                *d = a - b;
                            }
                        }
                        RealOp::Mul => {
                            for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
                                *d = a * b;
                            }
                        }
                        RealOp::Div => {
                            for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
                                *d = a / b;
                            }
                        }
                        RealOp::Fmin => {
                            for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
                                *d = a.min(b);
                            }
                        }
                        RealOp::Fmax => {
                            for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
                                *d = a.max(b);
                            }
                        }
                        _ => {
                            sweep_op2(op, d, a, b);
                        }
                    }
                }
                Instr::Tern { op, a, b, c, .. } => {
                    let (a, b, c) = (row(a), row(b), row(c));
                    match op {
                        RealOp::Fma => {
                            for (((d, &a), &b), &c) in d.iter_mut().zip(a).zip(b).zip(c) {
                                *d = a.mul_add(b, c);
                            }
                        }
                        _ => {
                            for (((d, &a), &b), &c) in d.iter_mut().zip(a).zip(b).zip(c) {
                                *d = apply_op3(op, a, b, c);
                            }
                        }
                    }
                }
                Instr::Round32 { a, .. } => {
                    for (d, &a) in d.iter_mut().zip(row(a)) {
                        *d = round_to_type(a, FpType::Binary32);
                    }
                }
                Instr::Select { c, t, e, .. } => {
                    // A pure per-lane select: both branches were computed for
                    // every lane, exactly like the scalar engine, so the block
                    // schedule cannot change any result.
                    let (c, t, e) = (row(c), row(t), row(e));
                    for (((d, &c), &t), &e) in d.iter_mut().zip(c).zip(t).zip(e) {
                        *d = if c != 0.0 { t } else { e };
                    }
                }
                Instr::Call {
                    fun, first, arity, ..
                } => {
                    let args = &self.arg_pool[first as usize..(first + arity) as usize];
                    let mut buf = [0.0f64; MAX_CALL_ARITY];
                    for (lane, d) in d.iter_mut().enumerate() {
                        for (slot, &reg) in buf.iter_mut().zip(args) {
                            *slot = lo[reg as usize * width + lane];
                        }
                        *d = fun(&buf[..arity as usize]);
                    }
                }
                Instr::CallUn { sweep, a, .. } => {
                    // A native operator with a block-wide form: one dispatch
                    // sweeps the whole lane slice (bit-identical to calling
                    // the scalar function per lane, per the sweep contract).
                    sweep(d, row(a));
                }
                Instr::CallBin { sweep, a, b, .. } => {
                    sweep(d, row(a), row(b));
                }
            }
        }

        let result = self.result as usize;
        out.copy_from_slice(&regs.slab[result * width..result * width + w]);
    }

    /// Evaluates points `start..start + out.len()` by sweeping blocks of the
    /// register file's width, with the ragged tail running at reduced width.
    /// This is the batch hot loop's entry point: zero allocation, one
    /// instruction dispatch per block rather than per point.
    pub fn eval_range(
        &self,
        columns: &[usize],
        points: &Columns,
        start: usize,
        regs: &mut BlockRegs,
        out: &mut [f64],
    ) {
        let width = regs.width;
        for (i, block) in out.chunks_mut(width).enumerate() {
            self.eval_block(columns, points, start + i * width, regs, block);
        }
    }

    /// Evaluates the program over a whole columnar batch (the convenience
    /// entry point — resolves columns, sizes a register file, sweeps).
    pub fn eval_columns(&self, vars: &[Symbol], points: &Columns) -> Vec<f64> {
        let columns = self.bind_columns(vars);
        let mut regs = self.new_block_regs(block_width_for(points.len()));
        let mut out = vec![0.0; points.len()];
        self.eval_range(&columns, points, 0, &mut regs, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::expr::FloatExpr;

    #[test]
    fn columns_round_trip_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let cols = Columns::from_rows(2, &rows);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.n_vars(), 2);
        assert_eq!(cols.col(0), &[1.0, 3.0, 5.0]);
        assert_eq!(cols.col(1), &[2.0, 4.0, 6.0]);
        assert_eq!(cols.row(1), vec![3.0, 4.0]);
        assert_eq!(cols.rows().collect::<Vec<_>>(), rows);
        // Out-of-range variables read NaN, like the scalar engine.
        assert!(cols.value(0, 7).is_nan());
    }

    #[test]
    fn short_rows_pad_with_nan() {
        let cols = Columns::from_rows(2, &[vec![1.0]]);
        assert_eq!(cols.value(0, 0), 1.0);
        assert!(cols.value(0, 1).is_nan());
    }

    #[test]
    fn split_at_preserves_columns() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 10.0 + i as f64]).collect();
        let (head, tail) = Columns::from_rows(2, &rows).split_at(3);
        assert_eq!(head.col(0), &[0.0, 1.0, 2.0]);
        assert_eq!(head.col(1), &[10.0, 11.0, 12.0]);
        assert_eq!(tail.col(0), &[3.0, 4.0]);
        assert_eq!(tail.col(1), &[13.0, 14.0]);
        // Degenerate splits keep every point on one side.
        let (all, none) = Columns::from_rows(2, &rows).split_at(99);
        assert_eq!(all.len(), 5);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn block_results_match_scalar_engine_at_every_width() {
        let target = builtin::by_name("c99").unwrap();
        let sub = target.find_operator("-.f64").unwrap();
        let sqrt = target.find_operator("sqrt.f64").unwrap();
        let add = target.find_operator("+.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), FpType::Binary64);
        let expr = FloatExpr::Op(
            sub,
            vec![
                FloatExpr::Op(
                    sqrt,
                    vec![FloatExpr::Op(
                        add,
                        vec![x.clone(), FloatExpr::literal(1.0, FpType::Binary64)],
                    )],
                ),
                FloatExpr::Op(sqrt, vec![x]),
            ],
        );
        let vars = [Symbol::new("x")];
        let rows: Vec<Vec<f64>> = (0..37)
            .map(|i| vec![10f64.powf(i as f64 / 3.0) - 2.0])
            .collect();
        let points = Columns::from_rows(1, &rows);
        let program = crate::compile(&target, &expr);
        let columns = program.bind_columns(&vars);
        let mut scalar_regs = program.new_regs();
        let scalar: Vec<u64> = rows
            .iter()
            .map(|p| program.eval_point(&columns, p, &mut scalar_regs).to_bits())
            .collect();
        for width in [1, 2, 3, 16, 37, 64] {
            let mut regs = program.new_block_regs(width);
            let mut out = vec![0.0; points.len()];
            program.eval_range(&columns, &points, 0, &mut regs, &mut out);
            let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(scalar, got, "width {width} diverged from the scalar engine");
        }
    }

    #[test]
    fn unbound_variables_load_nan_in_blocks() {
        let target = builtin::by_name("c99").unwrap();
        let add = target.find_operator("+.f64").unwrap();
        let expr = FloatExpr::Op(
            add,
            vec![
                FloatExpr::Var(Symbol::new("zz"), FpType::Binary64),
                FloatExpr::literal(1.0, FpType::Binary64),
            ],
        );
        let program = crate::compile(&target, &expr);
        let points = Columns::from_rows(1, &[vec![2.0], vec![3.0]]);
        let out = program.eval_columns(&[Symbol::new("x")], &points);
        assert!(out.iter().all(|v| v.is_nan()));
    }

    /// A native operator with an observable execution count, to prove the
    /// uniform-mask fast path really skips dead select arms.
    fn counted_exp(args: &[f64]) -> f64 {
        use std::sync::atomic::Ordering;
        SKIP_CALLS.fetch_add(1, Ordering::Relaxed);
        args[0].exp()
    }
    static SKIP_CALLS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    #[test]
    fn uniform_masks_skip_dead_select_arms() {
        use crate::operator::Operator;
        use std::sync::atomic::Ordering;
        let t = crate::Target::new("t", "test").with_operators(vec![
            Operator::emulated(
                "*.f64",
                &[FpType::Binary64; 2],
                FpType::Binary64,
                "(* a0 a1)",
                1.0,
            ),
            Operator::native(
                "cexp.f64",
                &[FpType::Binary64],
                FpType::Binary64,
                "(exp a0)",
                40.0,
                counted_exp,
            ),
        ]);
        let cexp = t.find_operator("cexp.f64").unwrap();
        let mul = t.find_operator("*.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), FpType::Binary64);
        // if (x < 0) { cexp(x) } else { x*x }
        let expr = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, FpType::Binary64)),
            )),
            Box::new(FloatExpr::Op(cexp, vec![x.clone()])),
            Box::new(FloatExpr::Op(mul, vec![x.clone(), x])),
        );
        let program = crate::compile(&t, &expr);
        assert_eq!(program.num_skippable_arms(), 2);
        let vars = [Symbol::new("x")];
        let columns = program.bind_columns(&vars);

        // All-positive block: the condition mask is uniformly false, so the
        // counted then-arm must not execute at all.
        let pos = Columns::from_rows(1, &(1..9).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let mut regs = program.new_block_regs(8);
        let mut out = vec![0.0; 8];
        SKIP_CALLS.store(0, Ordering::Relaxed);
        program.eval_range(&columns, &pos, 0, &mut regs, &mut out);
        assert_eq!(
            SKIP_CALLS.load(Ordering::Relaxed),
            0,
            "a dead then-arm must be skipped on a uniform mask"
        );
        for (i, &v) in out.iter().enumerate() {
            let want = ((i + 1) as f64) * ((i + 1) as f64);
            assert_eq!(v, want, "lane {i}");
        }

        // Mixed block: both arms run, results stay bit-identical to the
        // scalar engine (which always executes both arms).
        let rows: Vec<Vec<f64>> = (-4..4).map(|i| vec![i as f64 + 0.5]).collect();
        let mixed = Columns::from_rows(1, &rows);
        SKIP_CALLS.store(0, Ordering::Relaxed);
        program.eval_range(&columns, &mixed, 0, &mut regs, &mut out);
        assert!(
            SKIP_CALLS.load(Ordering::Relaxed) > 0,
            "mixed masks execute the arm"
        );
        let mut scalar_regs = program.new_regs();
        for (row, &got) in rows.iter().zip(&out) {
            let want = program.eval_point(&columns, row, &mut scalar_regs);
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "mixed-mask divergence at {row:?}"
            );
        }
    }

    #[test]
    fn identical_arms_are_never_skipped() {
        // Both arms CSE to the same register: the select reads it through
        // its live operand whatever the mask, so skipping the "dead" arm
        // would leave stale lanes. The compiler must record no skip range.
        let target = builtin::by_name("c99").unwrap();
        let exp = target.find_operator("exp.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), FpType::Binary64);
        let expr = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, FpType::Binary64)),
            )),
            Box::new(FloatExpr::Op(exp, vec![x.clone()])),
            Box::new(FloatExpr::Op(exp, vec![x])),
        );
        let program = crate::compile(&target, &expr);
        assert_eq!(program.num_skippable_arms(), 0);
        let vars = [Symbol::new("x")];
        let columns = program.bind_columns(&vars);
        // Uniformly false mask first (all-positive block), then mixed: every
        // lane must still match the scalar engine bit for bit.
        let rows: Vec<Vec<f64>> = (1..9)
            .map(|i| vec![i as f64 * 0.25])
            .chain((-4..4).map(|i| vec![i as f64 + 0.5]))
            .collect();
        let points = Columns::from_rows(1, &rows);
        let mut regs = program.new_block_regs(8);
        let mut out = vec![0.0; rows.len()];
        program.eval_range(&columns, &points, 0, &mut regs, &mut out);
        let mut scalar_regs = program.new_regs();
        for (row, &got) in rows.iter().zip(&out) {
            let want = program.eval_point(&columns, row, &mut scalar_regs);
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "identical-arm select diverged at {row:?}"
            );
        }
    }

    #[test]
    fn block_register_file_reuse_is_sound() {
        let target = builtin::by_name("c99").unwrap();
        let exp = target.find_operator("exp.f64").unwrap();
        let expr = FloatExpr::Op(
            exp,
            vec![FloatExpr::Var(Symbol::new("x"), FpType::Binary64)],
        );
        let program = crate::compile(&target, &expr);
        let vars = [Symbol::new("x")];
        let columns = program.bind_columns(&vars);
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1]).collect();
        let points = Columns::from_rows(1, &rows);
        let mut regs = program.new_block_regs(4);
        let mut first = vec![0.0; points.len()];
        program.eval_range(&columns, &points, 0, &mut regs, &mut first);
        let mut second = vec![0.0; points.len()];
        program.eval_range(&columns, &points, 0, &mut regs, &mut second);
        let (a, b): (Vec<u64>, Vec<u64>) = (
            first.iter().map(|v| v.to_bits()).collect(),
            second.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(a, b);
    }
}
