//! Seeded fault injection for chaos-testing the compilation pipeline.
//!
//! The search pipeline has a handful of places where the real world can go
//! wrong: equality saturation hits its node cap, Rival's precision ladder tops
//! out without converging, the sampler meets a degenerate domain, a worker
//! thread dies. Those paths are exactly the ones ordinary tests exercise
//! least, so this crate plants named **fault points** in them and lets a test
//! harness arm the points deterministically:
//!
//! * [`point`] is the per-site hook. Unarmed (the production state) it is a
//!   single relaxed atomic load returning `false` — no lock, no allocation,
//!   no branch on shared data — so instrumented code paths are bit-identical
//!   to uninstrumented ones.
//! * [`FaultPlan`] describes which sites misbehave and how: an
//!   [`Abort`](FaultAction::Abort) makes the site take its graceful early-out
//!   (the site decides what that means: a stopped saturation, a non-converged
//!   ground truth, an empty sample batch), a [`Panic`](FaultAction::Panic)
//!   panics right at the site, which is how the harness proves panics are
//!   isolated per job instead of killing the process. The latency actions —
//!   [`Delay`](FaultAction::Delay) (sleep, then proceed) and
//!   [`Stall`](FaultAction::Stall) (block until the plan is disarmed) — let
//!   a harness manufacture slow and hung executions for deadline/watchdog
//!   testing.
//! * [`FaultPlan::seeded`] derives a plan from a single `u64` with SplitMix64
//!   (the same construction as the `chassis` sampler's stream derivation and
//!   the `targets` mutation harness), so a chaos run is reproducible from its
//!   seed alone.
//! * [`install`] arms a plan process-globally and returns an [`ArmedPlan`]
//!   guard that disarms on drop. Installation is exclusive (a static mutex),
//!   which also serializes tests that inject faults against each other.
//!
//! This crate has no dependencies so the zero-dependency `egraph` crate (and
//! every other layer) can call [`point`] without new edges in the workspace
//! graph.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// The canonical fault points instrumented across the workspace, in pipeline
/// order. [`FaultPlan::seeded`] arms a subset of whatever site list it is
/// given; passing this constant covers the whole pipeline.
///
/// * `sample.points` — inside `chassis`'s sampling loop; an abort ends the
///   attempt budget early (typed `SampleError`).
/// * `rival.eval` — at the head of Rival's precision ladder; an abort forces
///   `GroundTruth::Unsamplable`, the ladder's own non-convergence outcome.
/// * `egraph.saturate` — at the top of each saturation iteration; an abort
///   stops the run as if the node cap had been hit.
/// * `par.spawn` — before the worker fan-out in `chassis::par`; an abort
///   degrades to the serial path, a panic exercises worker-panic transport.
/// * `session.compile` — at the head of each per-target compile job; the
///   direct way to prove per-job isolation in `compile_many`.
/// * `store.read` — in the service result store's disk-read path; an abort
///   makes the entry unreadable (as a corrupt or torn file would), so the
///   lookup degrades to a cache miss.
/// * `store.write` — in the service result store's disk-write path; an abort
///   skips persistence (disk-full style), degrading the store to memory-only
///   for that entry.
/// * `service.accept` — in the compile daemon's accept loop; an abort drops
///   one incoming connection (transient network failure), a panic exercises
///   the accept thread's isolation boundary.
pub const SITES: &[&str] = &[
    "sample.points",
    "rival.eval",
    "egraph.saturate",
    "par.spawn",
    "session.compile",
    "store.read",
    "store.write",
    "service.accept",
];

/// The compilation-pipeline subset of [`SITES`]: every point reachable from a
/// bare [`compile_many`] corpus run, with no daemon in the loop. The `chaos`
/// gate seeds its plans over this list so every plan can actually fire.
///
/// [`compile_many`]: https://docs.rs/ (chassis::Session::compile_many)
pub const PIPELINE_SITES: &[&str] = &[
    "sample.points",
    "rival.eval",
    "egraph.saturate",
    "par.spawn",
    "session.compile",
];

/// The service subset of [`SITES`]: the result store's disk paths and the
/// daemon's accept loop. The service chaos tests arm these (usually together
/// with [`PIPELINE_SITES`], since a daemon request runs the whole pipeline).
pub const SERVICE_SITES: &[&str] = &["store.read", "store.write", "service.accept"];

/// What an armed fault point does when it fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// The site takes its graceful early-out (resource-exhaustion style).
    Abort,
    /// The site panics, as a latent bug would.
    Panic,
    /// The site sleeps for the given number of milliseconds, then proceeds
    /// normally — a slow disk, a scheduling hiccup, a long GC pause in a
    /// neighbouring process. Fires on every hit at or past `after`.
    Delay(u64),
    /// The site blocks until the installed plan is dropped — a hung
    /// execution. Unlike the other actions this fires **exactly once** (on
    /// hit `after`): a stall models one wedged thread, and later hits must
    /// pass so a harness can prove the system recovers capacity *around* the
    /// stuck execution while it is still stuck.
    Stall,
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Abort => f.write_str("abort"),
            FaultAction::Panic => f.write_str("panic"),
            FaultAction::Delay(ms) => write!(f, "delay({ms}ms)"),
            FaultAction::Stall => f.write_str("stall"),
        }
    }
}

/// One armed site of a [`FaultPlan`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Arm {
    /// The fault-point name (see [`SITES`]).
    pub site: String,
    /// What happens when the point fires.
    pub action: FaultAction,
    /// How many hits of the site pass through unharmed first: `0` fires on
    /// the very first hit, `n` on hit `n` (and every one after, for aborts).
    pub after: u64,
}

/// A deterministic description of which fault points misbehave and how.
///
/// Plans are inert data until [`install`]ed. The builder form
/// ([`FaultPlan::arm`]) serves targeted tests; [`FaultPlan::seeded`] derives
/// arbitrary plans from a seed for the chaos harness.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    arms: Vec<Arm>,
}

/// SplitMix64 step (Steele et al.), the workspace's standard seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no armed sites. Installing it turns the fault machinery on
    /// (every [`point`] takes the slow path) while firing nothing — the
    /// configuration the bit-identity gates compare against.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms `site` with `action`, firing after `after` unharmed hits
    /// (builder style; a site may be armed more than once).
    #[must_use]
    pub fn arm(mut self, site: &str, action: FaultAction, after: u64) -> FaultPlan {
        self.arms.push(Arm {
            site: site.to_string(),
            action,
            after,
        });
        self
    }

    /// Derives a plan from `seed` over the given site list: one to three
    /// arms, each with a site, action, and hit delay drawn from the
    /// SplitMix64 stream. Equal seeds give equal plans; panics are armed
    /// about a quarter of the time so most plans exercise the graceful
    /// degradation paths.
    ///
    /// Returns the empty plan when `sites` is empty.
    pub fn seeded(seed: u64, sites: &[&str]) -> FaultPlan {
        let mut state = seed;
        let mut plan = FaultPlan::new();
        if sites.is_empty() {
            return plan;
        }
        let n_arms = 1 + (splitmix64(&mut state) % 3);
        for _ in 0..n_arms {
            let site = sites[(splitmix64(&mut state) % sites.len() as u64) as usize];
            let action = if splitmix64(&mut state).is_multiple_of(4) {
                FaultAction::Panic
            } else {
                FaultAction::Abort
            };
            let after = splitmix64(&mut state) % 6;
            plan = plan.arm(site, action, after);
        }
        plan
    }

    /// Like [`FaultPlan::seeded`] but with the latency actions in the mix:
    /// arms draw from abort, panic, [`Delay`](FaultAction::Delay) (10–150 ms),
    /// and — only on sites listed in `stall_sites` — [`Stall`](FaultAction::Stall).
    /// Kept separate from `seeded` on purpose: a stall blocks until the plan
    /// is disarmed, so it is only safe where a watchdog (or the harness
    /// itself) bounds how long the plan stays installed, and existing gates
    /// seeded over `seeded` keep their action distribution.
    ///
    /// Returns the empty plan when `sites` is empty.
    pub fn seeded_latency(seed: u64, sites: &[&str], stall_sites: &[&str]) -> FaultPlan {
        let mut state = seed ^ 0xA5A5_5A5A_C3C3_3C3C;
        let mut plan = FaultPlan::new();
        if sites.is_empty() {
            return plan;
        }
        let n_arms = 1 + (splitmix64(&mut state) % 3);
        for _ in 0..n_arms {
            let site = sites[(splitmix64(&mut state) % sites.len() as u64) as usize];
            let roll = splitmix64(&mut state) % 8;
            let delay_ms = 10 + splitmix64(&mut state) % 140;
            let action = match roll {
                0 => FaultAction::Panic,
                1 | 2 => FaultAction::Abort,
                3 if stall_sites.contains(&site) => FaultAction::Stall,
                3 => FaultAction::Abort,
                _ => FaultAction::Delay(delay_ms),
            };
            let after = splitmix64(&mut state) % 6;
            plan = plan.arm(site, action, after);
        }
        plan
    }

    /// The armed sites.
    pub fn arms(&self) -> &[Arm] {
        &self.arms
    }

    /// True when no site is armed.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.arms.is_empty() {
            return f.write_str("(no faults armed)");
        }
        for (i, arm) in self.arms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}:{}@{}", arm.site, arm.action, arm.after)?;
        }
        Ok(())
    }
}

/// One installed arm: the plan data plus a hit counter.
struct ActiveArm {
    site: String,
    action: FaultAction,
    after: u64,
    hits: AtomicU64,
}

struct Active {
    arms: Vec<ActiveArm>,
    fired: Arc<AtomicU64>,
}

/// True iff a plan is installed; the only state [`point`] touches on the
/// production (unarmed) path.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The installed plan. A `RwLock` so concurrent fault points (worker threads)
/// read without contention; only install/disarm write.
static ACTIVE: RwLock<Option<Active>> = RwLock::new(None);
/// Serializes installations: one plan at a time, process-wide.
static INSTALL: Mutex<()> = Mutex::new(());
/// Bumped on every install *and* disarm; a firing [`Stall`](FaultAction::Stall)
/// captures the epoch and blocks until it changes, so dropping the
/// [`ArmedPlan`] releases every stalled thread.
static EPOCH: Mutex<u64> = Mutex::new(0);
static EPOCH_CV: std::sync::Condvar = std::sync::Condvar::new();

fn bump_epoch() {
    let mut epoch = EPOCH.lock().unwrap_or_else(PoisonError::into_inner);
    *epoch = epoch.wrapping_add(1);
    EPOCH_CV.notify_all();
}

/// Blocks until the epoch moves past `entered` (i.e. the plan that armed the
/// stall is disarmed). The periodic timeout is belt-and-braces against a
/// missed notification; correctness comes from re-reading the epoch.
fn stall_until_disarmed(entered: u64) {
    let mut epoch = EPOCH.lock().unwrap_or_else(PoisonError::into_inner);
    while *epoch == entered {
        let (guard, _) = EPOCH_CV
            .wait_timeout(epoch, std::time::Duration::from_millis(100))
            .unwrap_or_else(PoisonError::into_inner);
        epoch = guard;
    }
}

/// The guard of an installed [`FaultPlan`]: the plan stays armed until this
/// is dropped. Holding it gives exclusive use of the fault machinery, so
/// concurrent tests that inject faults serialize on [`install`].
pub struct ArmedPlan {
    fired: Arc<AtomicU64>,
    _exclusive: MutexGuard<'static, ()>,
}

impl ArmedPlan {
    /// How many times any armed point has fired (aborts and panics both
    /// count). A chaos run uses this to prove its plans did something.
    pub fn fires(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = None;
        bump_epoch();
    }
}

/// Arms `plan` process-globally and returns the guard that disarms it on
/// drop. Blocks until any previously installed plan is dropped.
pub fn install(plan: FaultPlan) -> ArmedPlan {
    let exclusive = INSTALL.lock().unwrap_or_else(PoisonError::into_inner);
    let fired = Arc::new(AtomicU64::new(0));
    let active = Active {
        arms: plan
            .arms
            .into_iter()
            .map(|arm| ActiveArm {
                site: arm.site,
                action: arm.action,
                after: arm.after,
                hits: AtomicU64::new(0),
            })
            .collect(),
        fired: Arc::clone(&fired),
    };
    *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = Some(active);
    ARMED.store(true, Ordering::SeqCst);
    bump_epoch();
    ArmedPlan {
        fired,
        _exclusive: exclusive,
    }
}

/// The fault point hook. Returns `true` when the calling site must take its
/// graceful early-out (an armed [`Abort`](FaultAction::Abort) fired), `false`
/// otherwise — which is the only possible answer while no plan is installed.
/// A firing [`Delay`](FaultAction::Delay) sleeps and then returns `false`
/// (the site proceeds, late); a firing [`Stall`](FaultAction::Stall) blocks
/// until the plan is disarmed and then returns `false`.
///
/// # Panics
///
/// Panics (with a message naming the site) when an armed
/// [`Panic`](FaultAction::Panic) fires — deliberately: that is the fault
/// being injected.
#[inline]
pub fn point(site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    point_armed(site)
}

#[cold]
fn point_armed(site: &str) -> bool {
    // Decide which action fires under the read lock, but *act* only after
    // releasing it: a Delay or Stall must not hold the lock, or the plan's
    // disarm (which takes the write lock) could never run and a stalled
    // site would block forever.
    let fired: Option<(FaultAction, u64)> = {
        let guard = ACTIVE.read().unwrap_or_else(PoisonError::into_inner);
        let Some(active) = guard.as_ref() else {
            return false;
        };
        let mut decision = None;
        for arm in active.arms.iter().filter(|arm| arm.site == site) {
            let hit = arm.hits.fetch_add(1, Ordering::Relaxed);
            // A stall models exactly one wedged execution: it fires on hit
            // `after` only, so later hits pass and the system can prove it
            // recovers capacity around the stuck thread.
            let fires = match arm.action {
                FaultAction::Stall => hit == arm.after,
                _ => hit >= arm.after,
            };
            if fires {
                active.fired.fetch_add(1, Ordering::Relaxed);
                let entered = *EPOCH.lock().unwrap_or_else(PoisonError::into_inner);
                decision = Some((arm.action, entered));
                break;
            }
        }
        decision
    };
    match fired {
        None => false,
        Some((FaultAction::Abort, _)) => true,
        Some((FaultAction::Panic, _)) => panic!("injected fault at {site}"),
        Some((FaultAction::Delay(ms), _)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        Some((FaultAction::Stall, entered)) => {
            stall_until_disarmed(entered);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_subsets_partition_the_registry() {
        let mut combined: Vec<&str> = Vec::new();
        combined.extend_from_slice(PIPELINE_SITES);
        combined.extend_from_slice(SERVICE_SITES);
        assert_eq!(combined, SITES, "PIPELINE_SITES + SERVICE_SITES == SITES");
    }

    #[test]
    fn unarmed_points_are_inert() {
        for site in SITES {
            assert!(!point(site));
        }
    }

    #[test]
    fn installed_empty_plan_fires_nothing() {
        let armed = install(FaultPlan::new());
        for site in SITES {
            assert!(!point(site));
        }
        assert_eq!(armed.fires(), 0);
    }

    #[test]
    fn abort_fires_after_the_configured_hits() {
        let armed = install(FaultPlan::new().arm("egraph.saturate", FaultAction::Abort, 2));
        assert!(!point("egraph.saturate"));
        assert!(!point("egraph.saturate"));
        assert!(point("egraph.saturate"), "third hit fires");
        assert!(point("egraph.saturate"), "aborts keep firing");
        assert!(!point("rival.eval"), "other sites are untouched");
        assert_eq!(armed.fires(), 2);
        drop(armed);
        assert!(!point("egraph.saturate"), "disarmed on drop");
    }

    #[test]
    fn panic_faults_panic_with_the_site_name() {
        let armed = install(FaultPlan::new().arm("par.spawn", FaultAction::Panic, 0));
        let payload =
            std::panic::catch_unwind(|| point("par.spawn")).expect_err("the armed panic must fire");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("par.spawn"), "got: {message}");
        assert_eq!(armed.fires(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_nonempty() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, SITES);
            let b = FaultPlan::seeded(seed, SITES);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(!a.is_empty(), "seed {seed} armed nothing");
            assert!(a.arms().len() <= 3);
            for arm in a.arms() {
                assert!(SITES.contains(&arm.site.as_str()));
            }
        }
        assert_ne!(FaultPlan::seeded(1, SITES), FaultPlan::seeded(2, SITES));
        assert!(FaultPlan::seeded(7, &[]).is_empty());
    }

    #[test]
    fn seeded_plans_cover_both_actions() {
        let mut aborts = 0;
        let mut panics = 0;
        for seed in 0..128 {
            for arm in FaultPlan::seeded(seed, SITES).arms() {
                match arm.action {
                    FaultAction::Abort => aborts += 1,
                    FaultAction::Panic => panics += 1,
                    other => panic!("seeded() must not arm {other}"),
                }
            }
        }
        assert!(aborts > 0 && panics > 0, "{aborts} aborts, {panics} panics");
    }

    #[test]
    fn seeded_latency_plans_cover_the_latency_actions_and_respect_stall_sites() {
        let stall_sites = &["session.compile"];
        let (mut delays, mut stalls, mut classic) = (0, 0, 0);
        for seed in 0..256 {
            let plan = FaultPlan::seeded_latency(seed, SITES, stall_sites);
            assert_eq!(
                plan,
                FaultPlan::seeded_latency(seed, SITES, stall_sites),
                "seed {seed} not reproducible"
            );
            for arm in plan.arms() {
                match arm.action {
                    FaultAction::Delay(ms) => {
                        assert!((10..160).contains(&ms));
                        delays += 1;
                    }
                    FaultAction::Stall => {
                        assert!(stall_sites.contains(&arm.site.as_str()));
                        stalls += 1;
                    }
                    _ => classic += 1,
                }
            }
        }
        assert!(
            delays > 0 && stalls > 0 && classic > 0,
            "{delays} delays, {stalls} stalls, {classic} abort/panic"
        );
        assert!(FaultPlan::seeded_latency(7, &[], stall_sites).is_empty());
    }

    #[test]
    fn delay_faults_sleep_then_proceed() {
        let armed = install(FaultPlan::new().arm("store.write", FaultAction::Delay(30), 1));
        let start = std::time::Instant::now();
        assert!(!point("store.write"), "hit 0 passes untouched");
        assert!(start.elapsed() < std::time::Duration::from_millis(20));
        let start = std::time::Instant::now();
        assert!(!point("store.write"), "a delay still lets the site proceed");
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
        assert_eq!(armed.fires(), 1);
    }

    #[test]
    fn stall_faults_block_until_disarm_and_fire_exactly_once() {
        let armed = install(FaultPlan::new().arm("store.read", FaultAction::Stall, 0));
        let stalled = std::thread::spawn(|| {
            let start = std::time::Instant::now();
            let aborted = point("store.read");
            (aborted, start.elapsed())
        });
        // Give the thread time to reach the stall, then prove the *second*
        // hit passes while the first is still stuck.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let start = std::time::Instant::now();
        assert!(!point("store.read"), "later hits pass");
        assert!(start.elapsed() < std::time::Duration::from_millis(20));
        assert!(!stalled.is_finished(), "the stalled hit is still blocked");
        assert_eq!(armed.fires(), 1);
        drop(armed);
        let (aborted, held) = stalled.join().expect("stalled thread must not panic");
        assert!(!aborted, "a released stall proceeds normally");
        assert!(held >= std::time::Duration::from_millis(50));
    }

    #[test]
    fn plans_render_for_logs() {
        assert_eq!(FaultPlan::new().to_string(), "(no faults armed)");
        let plan = FaultPlan::new()
            .arm("rival.eval", FaultAction::Abort, 1)
            .arm("par.spawn", FaultAction::Panic, 0);
        assert_eq!(plan.to_string(), "rival.eval:abort@1, par.spawn:panic@0");
    }
}
