//! # chassis
//!
//! A target-aware numerical compiler: the primary contribution of *"Target-Aware
//! Implementation of Real Expressions"* (ASPLOS 2025), reimplemented in Rust.
//!
//! Chassis compiles a real-number expression (an [`fpcore::FPCore`]) and a
//! [`targets::Target`] description into a Pareto frontier of target-specific
//! floating-point programs trading off estimated cost against measured accuracy.
//!
//! The major pieces, following the paper's structure:
//!
//! * [`lang`] — the mixed real/float e-graph language (Section 5.1),
//! * [`rules`] — the target-independent mathematical identity database,
//! * [`isel`] — instruction selection modulo equivalence via equality saturation,
//! * [`typed_extract`] — the typed extraction algorithm,
//! * [`lower`] — naive direct lowering (initial programs, baselines, Herbie
//!   transcription),
//! * [`sample`] — input sampling against preconditions,
//! * [`accuracy`] — ULP/bits-of-error measurement against Rival ground truth,
//! * [`local_error`] / [`cost_opportunity`] — the heuristics guiding the loop
//!   (Section 5.2),
//! * [`pareto`] — Pareto frontier maintenance,
//! * [`improve`] — the iterative improvement loop,
//! * [`regimes`] — regime inference (branch splitting),
//! * [`session`] — the public [`Session`]/[`Prepared`] API: prepare a
//!   benchmark once (sampling + ground truth), compile it for many targets,
//!   observe the search ([`Progress`]) and bound it ([`Budget`]),
//! * [`compiler`] — configuration and result types,
//! * [`baseline`] — the Herbie-style and Clang-style baselines used in the
//!   evaluation.
//!
//! # Example
//!
//! The target-independent phases (input sampling, Rival ground truth) run once
//! per benchmark in [`Session::prepare`]; each [`Prepared::compile`] then runs
//! only the target-specific search:
//!
//! ```no_run
//! use chassis::{Config, Session};
//! use fpcore::parse_fpcore;
//! use targets::builtin;
//!
//! let core = parse_fpcore("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
//! let session = Session::new(Config::default());
//! let prepared = session.prepare(&core).unwrap();
//! for name in ["c99", "avx", "fdlibm"] {
//!     let target = builtin::by_name(name).unwrap();
//!     let result = prepared.compile(&target).unwrap();
//!     for imp in &result.implementations {
//!         println!(
//!             "{name}: cost {:8.1}  accuracy {:5.2} bits  {}",
//!             imp.cost, imp.accuracy_bits, imp.rendered
//!         );
//!     }
//! }
//! ```
//!
//! Whole-corpus runs go through [`Session::compile_many`], which prepares each
//! benchmark exactly once and fans the `(benchmark × target)` compile jobs out
//! over [`par`].

pub mod accuracy;
pub mod baseline;
pub mod compiler;
pub mod cost_opportunity;
pub mod improve;
pub mod isel;
pub mod lang;
pub mod local_error;
pub mod lower;
pub mod par;
pub mod pareto;
pub mod regimes;
pub mod rng;
pub mod rules;
pub mod sample;
pub mod session;
pub mod typed_extract;

pub use compiler::{
    CompilationResult, CompileError, Config, ErrorKind, Implementation, JobPanic, ResourceLimit,
};
pub use isel::{InstructionSelector, IselConfig, IselResult};
pub use lower::{lower_fpcore, DirectLowering, LowerError};
pub use pareto::ParetoFrontier;
pub use sample::{GroundTruthCache, SampleError, SampleSet, Sampler, TruthEngine, TruthStats};
pub use session::{
    Budget, CancelToken, Phase, Prepared, Progress, ProgressFn, SearchControl, SearchCtx,
    SearchStats, Session,
};
