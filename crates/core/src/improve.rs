//! The iterative improvement loop (paper Section 5.2).
//!
//! Each iteration picks Pareto-optimal candidates that have not yet been
//! explored, uses the local-error and cost-opportunity heuristics to choose a
//! small set of subexpressions, runs instruction selection modulo equivalence on
//! each, substitutes the extracted variants back into the candidate, and keeps
//! the Pareto-optimal results.

// On the `compile_many` call path: budget cuts and caught panics are the
// only ways out of the loop, never an unwrap (docs/RESILIENCE.md).
#![deny(clippy::unwrap_used, clippy::expect_used)]
use crate::accuracy;
use crate::cost_opportunity::{cost_opportunities, CostOppConfig};
use crate::isel::{InstructionSelector, IselConfig};
use crate::local_error::{local_errors_cached, ScoredSubexpr};
use crate::par;
use crate::pareto::ParetoFrontier;
use crate::sample::{GroundTruthCache, SampleSet};
use crate::session::{Phase, Progress, SearchCtx};
use fpcore::{FpType, Symbol};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use targets::{program_cost, FloatExpr, Target};

/// Configuration of the improvement loop.
#[derive(Clone, Debug)]
pub struct ImproveConfig {
    /// Number of loop iterations (the paper runs a fixed number).
    pub iterations: usize,
    /// How many unexplored frontier candidates are expanded per iteration.
    pub candidates_per_iteration: usize,
    /// How many subexpressions are rewritten per candidate.
    pub subexprs_per_candidate: usize,
    /// Limits for each instruction-selection run.
    pub isel: IselConfig,
    /// Limits for the cost-opportunity analysis.
    pub cost_opp: CostOppConfig,
}

impl Default for ImproveConfig {
    fn default() -> Self {
        ImproveConfig {
            iterations: 3,
            candidates_per_iteration: 2,
            subexprs_per_candidate: 2,
            isel: IselConfig::default(),
            cost_opp: CostOppConfig::default(),
        }
    }
}

/// A candidate program with its measured statistics.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The program.
    pub expr: FloatExpr,
    /// Estimated cost under the target cost model.
    pub cost: f64,
    /// Mean bits of error on the training points.
    pub error_bits: f64,
}

/// Replaces the first occurrence of `needle` in `expr` with `replacement`.
pub fn replace_subexpr(
    expr: &FloatExpr,
    needle: &FloatExpr,
    replacement: &FloatExpr,
) -> Option<FloatExpr> {
    if expr == needle {
        return Some(replacement.clone());
    }
    match expr {
        FloatExpr::Num(_, _) | FloatExpr::Var(_, _) => None,
        FloatExpr::Op(id, args) => {
            for (i, arg) in args.iter().enumerate() {
                if let Some(new_arg) = replace_subexpr(arg, needle, replacement) {
                    let mut new_args = args.clone();
                    new_args[i] = new_arg;
                    return Some(FloatExpr::Op(*id, new_args));
                }
            }
            None
        }
        FloatExpr::Cmp(op, a, b) => {
            if let Some(na) = replace_subexpr(a, needle, replacement) {
                return Some(FloatExpr::Cmp(*op, Box::new(na), b.clone()));
            }
            replace_subexpr(b, needle, replacement)
                .map(|nb| FloatExpr::Cmp(*op, a.clone(), Box::new(nb)))
        }
        FloatExpr::If(c, t, e) => {
            if let Some(nc) = replace_subexpr(c, needle, replacement) {
                return Some(FloatExpr::If(Box::new(nc), t.clone(), e.clone()));
            }
            if let Some(nt) = replace_subexpr(t, needle, replacement) {
                return Some(FloatExpr::If(c.clone(), Box::new(nt), e.clone()));
            }
            replace_subexpr(e, needle, replacement)
                .map(|ne| FloatExpr::If(c.clone(), t.clone(), Box::new(ne)))
        }
    }
}

/// Combines the local-error and cost-opportunity rankings into one list of
/// subexpressions worth rewriting (best first).
fn choose_subexpressions(
    errors: &[ScoredSubexpr],
    opportunities: &[ScoredSubexpr],
    how_many: usize,
) -> Vec<FloatExpr> {
    // Normalize each ranking to [0, 1] and sum the scores per subexpression.
    let mut combined: Vec<(FloatExpr, f64)> = Vec::new();
    let mut add = |list: &[ScoredSubexpr]| {
        let max = list
            .iter()
            .map(|s| s.score)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for s in list {
            let normalized = s.score / max;
            match combined.iter_mut().find(|(e, _)| *e == s.expr) {
                Some((_, total)) => *total += normalized,
                None => combined.push((s.expr.clone(), normalized)),
            }
        }
    };
    add(errors);
    add(opportunities);
    combined.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    combined
        .into_iter()
        .filter(|(_, score)| *score > 0.0)
        .take(how_many)
        .map(|(e, _)| e)
        .collect()
}

/// Runs the iterative improvement loop starting from `initial`, returning the
/// final Pareto frontier of candidates (scored on the training points).
///
/// Silent and unbounded; see [`improve_with`] for the session entry point
/// with progress reporting and a budget.
pub fn improve(
    target: &Target,
    initial: FloatExpr,
    samples: &SampleSet,
    var_types: &HashMap<Symbol, FpType>,
    config: &ImproveConfig,
) -> ParetoFrontier<Candidate> {
    improve_with(
        target,
        initial,
        samples,
        var_types,
        config,
        &SearchCtx::detached(),
    )
}

/// The improvement loop under a [`SearchCtx`]: every frontier admission and
/// iteration start is reported through the context's [`Progress`] observer,
/// the context's [`Budget`](crate::session::Budget) is checked before each
/// iteration and before each instruction-selection run (the expensive step),
/// and the session's shared ground-truth cache feeds the local-error
/// heuristic.
///
/// Within one iteration the two expensive stages fan out over
/// [`chassis::par`](crate::par):
///
/// 1. each expansion candidate's analysis (local error + cost opportunities)
///    and instruction-selection saturation runs on its own worker, producing
///    an ordered batch of rewritten programs;
/// 2. the batches are flattened **in candidate order** and every new program
///    is scored on the training points in parallel, again in order.
///
/// Admission to the frontier is then serial, in exactly the order the serial
/// loop would have produced — and scoring itself is bit-identical at every
/// thread count (the block engine guarantees this per program) — so with an
/// unlimited budget the resulting frontier is bit-identical to [`improve`]
/// whatever the thread count. A wall-clock budget is the one exception:
/// whether the mid-iteration cut fires depends on machine speed (as in the
/// serial loop), and under parallelism each candidate's worker observes the
/// deadline independently.
///
/// When the budget runs out the loop stops and returns the frontier found so
/// far — the initial program is inserted before the first iteration, so the
/// result is never empty. A fired [`CancelToken`](crate::CancelToken) cuts at
/// exactly the same points (it is folded into the context's `out_of_time`
/// check), so cancellation degrades identically — and, like the wall-clock
/// cut, trades determinism for latency only once it actually fires.
pub fn improve_with(
    target: &Target,
    initial: FloatExpr,
    samples: &SampleSet,
    var_types: &HashMap<Symbol, FpType>,
    config: &ImproveConfig,
    ctx: &SearchCtx,
) -> ParetoFrontier<Candidate> {
    let selector = InstructionSelector::new(target, config.isel);
    let mut frontier: ParetoFrontier<Candidate> = ParetoFrontier::new();
    let mut explored: HashSet<String> = HashSet::new();
    let truths = ctx
        .truths()
        .cloned()
        .unwrap_or_else(|| GroundTruthCache::for_training(samples));

    let evaluate = |expr: &FloatExpr| -> Candidate {
        let cost = program_cost(target, expr);
        let (error_bits, _) =
            accuracy::evaluate_on_train_with(target, expr, samples, ctx.options());
        ctx.note_scored(1);
        Candidate {
            expr: expr.clone(),
            cost,
            error_bits,
        }
    };

    let admit = |frontier: &mut ParetoFrontier<Candidate>, candidate: Candidate| {
        let (cost, error_bits) = (candidate.cost, candidate.error_bits);
        if frontier.insert(cost, error_bits, candidate) {
            ctx.emit(Progress::FrontierPointAdmitted { cost, error_bits });
        }
    };

    admit(&mut frontier, evaluate(&initial));

    for iteration in 0..config.iterations {
        if ctx.iteration_barred(iteration) || ctx.out_of_time() {
            ctx.emit(Progress::BudgetExhausted {
                phase: Phase::Improve,
                iterations_completed: iteration,
            });
            break;
        }
        ctx.emit(Progress::ImproveIteration {
            iteration,
            frontier_size: frontier.len(),
        });
        // Pick unexplored candidates, preferring the most accurate and cheapest.
        let mut to_expand: Vec<Candidate> = Vec::new();
        for (_, _, candidate) in frontier.iter() {
            let key = candidate.expr.render(target);
            if !explored.contains(&key) {
                to_expand.push(candidate.clone());
            }
            if to_expand.len() >= config.candidates_per_iteration {
                break;
            }
        }
        if to_expand.is_empty() {
            break;
        }
        for candidate in &to_expand {
            explored.insert(candidate.expr.render(target));
        }

        // Stage 1: analyse and saturate each expansion candidate on its own
        // worker. Each worker produces its rewritten programs in the order the
        // serial loop would have (subexpression rank, then extraction order),
        // and `par_map` reassembles the batches in candidate order.
        let batches: Vec<(Vec<FloatExpr>, bool)> = par::par_map(&to_expand, |candidate| {
            let errors = local_errors_cached(target, &candidate.expr, samples, &truths);
            let opportunities =
                cost_opportunities(target, &candidate.expr, var_types, config.cost_opp);
            let chosen =
                choose_subexpressions(&errors, &opportunities, config.subexprs_per_candidate);
            // Fall back to the whole program when no subexpression stands out.
            let chosen = if chosen.is_empty() {
                vec![candidate.expr.clone()]
            } else {
                chosen
            };
            let mut programs: Vec<FloatExpr> = Vec::new();
            let mut ran_out = false;
            for subexpr in chosen {
                // The budget's mid-iteration cut point: each saturation run is
                // the expensive step, so a long search degrades gracefully by
                // keeping what this iteration already produced.
                if ctx.out_of_time() {
                    ran_out = true;
                    break;
                }
                let ty = subexpr.result_type(target);
                let real = subexpr.desugar(target);
                let started = Instant::now();
                let result = selector.run(&real, var_types, ty);
                ctx.note_saturation(started.elapsed());
                for variant in result.candidates {
                    if variant == subexpr {
                        continue;
                    }
                    if let Some(new_program) = replace_subexpr(&candidate.expr, &subexpr, &variant)
                    {
                        programs.push(new_program);
                    }
                }
            }
            (programs, ran_out)
        });
        let ran_out = batches.iter().any(|(_, cut)| *cut);
        let new_programs: Vec<FloatExpr> = batches
            .into_iter()
            .flat_map(|(programs, _)| programs)
            .collect();

        // Stage 2: score every rewritten program in parallel (cost model +
        // training error on the block engine), then admit serially in the
        // deterministic flattened order.
        let new_candidates: Vec<Candidate> = par::par_map(&new_programs, |p| evaluate(p));
        for candidate in new_candidates {
            admit(&mut frontier, candidate);
        }
        if ran_out {
            ctx.emit(Progress::BudgetExhausted {
                phase: Phase::Improve,
                iterations_completed: iteration,
            });
            break;
        }
    }
    frontier
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::lower::{lower_fpcore, variable_types};
    use crate::sample::Sampler;
    use fpcore::parse_fpcore;
    use targets::builtin;

    fn small_config() -> ImproveConfig {
        ImproveConfig {
            iterations: 2,
            candidates_per_iteration: 1,
            subexprs_per_candidate: 2,
            isel: IselConfig {
                node_limit: 3_000,
                iter_limit: 4,
                max_candidates: 20,
                ..IselConfig::default()
            },
            ..ImproveConfig::default()
        }
    }

    #[test]
    fn replace_subexpr_replaces_first_occurrence() {
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore("(FPCore (x) (+ (sqrt x) (sqrt x)))").unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        let sqrt_x = match &prog {
            FloatExpr::Op(_, args) => args[0].clone(),
            _ => panic!("unexpected lowering"),
        };
        let replacement = FloatExpr::Var(Symbol::new("x"), FpType::Binary64);
        let replaced = replace_subexpr(&prog, &sqrt_x, &replacement).unwrap();
        assert!(replaced.size() < prog.size());
        // A needle that does not occur anywhere is not replaced.
        let absent = FloatExpr::literal(42.0, FpType::Binary64);
        assert!(replace_subexpr(&prog, &absent, &replacement).is_none());
    }

    #[test]
    fn improves_accuracy_of_cancellation_prone_expression() {
        // sqrt(x+1) - sqrt(x) for large x: the loop should find a rewriting that
        // is substantially more accurate than the direct lowering.
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore(
            "(FPCore (x) :pre (and (> x 1e8) (< x 1e15)) (- (sqrt (+ x 1)) (sqrt x)))",
        )
        .unwrap();
        let initial = lower_fpcore(&core, &t).unwrap();
        let samples = Sampler::new(42).sample(&core, 10, 4).unwrap();
        let vars = variable_types(&core);
        let frontier = improve(&t, initial.clone(), &samples, &vars, &small_config());
        assert!(!frontier.is_empty());
        let initial_error = accuracy::evaluate_on_train(&t, &initial, &samples).0;
        let best_error = frontier.most_accurate().unwrap().1;
        assert!(
            best_error + 5.0 < initial_error,
            "expected a large accuracy win: initial {initial_error:.1} bits, best {best_error:.1} bits"
        );
    }

    #[test]
    fn finds_cheaper_programs_on_avx() {
        // 1/x in binary32 on AVX: the frontier should contain the cheap rcp form
        // in addition to the exact division.
        let t = builtin::by_name("avx").unwrap();
        let core = parse_fpcore(
            "(FPCore ((! :precision binary32 x)) :precision binary32 :pre (> x 1e-3) (/ 1 x))",
        )
        .unwrap();
        let initial = lower_fpcore(&core, &t).unwrap();
        let samples = Sampler::new(3).sample(&core, 8, 4).unwrap();
        let vars = variable_types(&core);
        let frontier = improve(&t, initial.clone(), &samples, &vars, &small_config());
        let initial_cost = program_cost(&t, &initial);
        let cheapest = frontier.cheapest().unwrap();
        assert!(
            cheapest.0 < initial_cost,
            "expected a cheaper candidate than the division ({} vs {initial_cost})",
            cheapest.0
        );
        assert!(cheapest.2.expr.render(&t).contains("rcp.f32"));
        // The frontier keeps the accurate option too.
        assert!(frontier.len() >= 2);
    }
}
