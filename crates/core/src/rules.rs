//! The mathematical-identity rewrite rule database.
//!
//! Rules are written as pairs of real-number expressions in FPCore syntax where
//! every free variable is a metavariable (e.g. `"(+ a b)" => "(+ b a)"`). They are
//! defined once over the *real* operators and therefore work for every target
//! (paper Section 5.1: "mathematical equivalences are defined once, and do not
//! have to be specialized to each target").
//!
//! Two rule sets are exposed:
//!
//! * [`full_rules`] — the complete database used by instruction selection modulo
//!   equivalence, and
//! * [`simplifying_rules`] — the subset of identities that do not grow the AST,
//!   used by the fast cost-opportunity analysis (Section 5.2).

use crate::lang::ChassisNode;
use egraph::{Analysis, PatVar, Pattern, PatternNode, Rewrite};
use fpcore::{parse_expr, Expr};

/// Builds an e-matching pattern from a real expression, treating every free
/// variable as a metavariable.
pub fn pattern_from_expr(expr: &Expr) -> Pattern<ChassisNode> {
    fn go(expr: &Expr, out: &mut Vec<PatternNode<ChassisNode>>) -> egraph::Id {
        let node = match expr {
            Expr::Num(c) => PatternNode::ENode(ChassisNode::Num(*c)),
            Expr::Var(v) => PatternNode::Var(PatVar::new(v.as_str())),
            Expr::Op(op, args) => {
                let children: Vec<egraph::Id> = args.iter().map(|a| go(a, out)).collect();
                PatternNode::ENode(ChassisNode::Real(*op, children))
            }
            Expr::If(c, t, e) => {
                let c = go(c, out);
                let t = go(t, out);
                let e = go(e, out);
                PatternNode::ENode(ChassisNode::If([c, t, e]))
            }
        };
        out.push(node);
        egraph::Id::from(out.len() - 1)
    }
    let mut nodes = Vec::new();
    go(expr, &mut nodes);
    Pattern::from_nodes(nodes)
}

/// Builds a pattern from FPCore source.
///
/// # Panics
///
/// Panics if the source does not parse (rule tables are compiled in, so this is
/// a programming error).
pub fn pattern(src: &str) -> Pattern<ChassisNode> {
    pattern_from_expr(&parse_expr(src).unwrap_or_else(|e| panic!("bad rule pattern {src:?}: {e}")))
}

/// Builds a rewrite rule from FPCore source for both sides.
pub fn rule<A: Analysis<ChassisNode>>(name: &str, lhs: &str, rhs: &str) -> Rewrite<ChassisNode, A> {
    Rewrite::new(name, pattern(lhs), pattern(rhs))
}

/// `(name, lhs, rhs, simplifying)` rule table. `simplifying` marks identities
/// whose right-hand side is no larger than the left-hand side.
const RULE_TABLE: &[(&str, &str, &str, bool)] = &[
    // --- commutativity / associativity -------------------------------------
    ("add-commute", "(+ a b)", "(+ b a)", true),
    ("mul-commute", "(* a b)", "(* b a)", true),
    ("add-assoc-l", "(+ (+ a b) c)", "(+ a (+ b c))", true),
    ("add-assoc-r", "(+ a (+ b c))", "(+ (+ a b) c)", true),
    ("mul-assoc-l", "(* (* a b) c)", "(* a (* b c))", true),
    ("mul-assoc-r", "(* a (* b c))", "(* (* a b) c)", true),
    // --- identities ---------------------------------------------------------
    ("add-zero", "(+ a 0)", "a", true),
    ("sub-zero", "(- a 0)", "a", true),
    ("zero-sub", "(- 0 a)", "(- a)", true),
    ("mul-one", "(* a 1)", "a", true),
    ("div-one", "(/ a 1)", "a", true),
    ("mul-zero", "(* a 0)", "0", true),
    ("sub-self", "(- a a)", "0", true),
    ("div-self", "(/ a a)", "1", true),
    ("neg-neg", "(- (- a))", "a", true),
    ("neg-as-sub", "(- a)", "(- 0 a)", false),
    ("sub-as-neg", "(- 0 a)", "(- a)", true),
    ("neg-mul-1", "(- a)", "(* -1 a)", false),
    ("mul-neg-1", "(* -1 a)", "(- a)", true),
    ("add-self-double", "(+ a a)", "(* 2 a)", true),
    ("double-add-self", "(* 2 a)", "(+ a a)", true),
    // --- subtraction / negation --------------------------------------------
    ("sub-as-add-neg", "(- a b)", "(+ a (- b))", false),
    ("add-neg-as-sub", "(+ a (- b))", "(- a b)", true),
    ("neg-sub-flip", "(- (- a b))", "(- b a)", true),
    (
        "neg-distribute-add",
        "(- (+ a b))",
        "(+ (- a) (- b))",
        false,
    ),
    // --- distributivity ------------------------------------------------------
    (
        "distribute-l",
        "(* a (+ b c))",
        "(+ (* a b) (* a c))",
        false,
    ),
    (
        "distribute-r",
        "(* (+ a b) c)",
        "(+ (* a c) (* b c))",
        false,
    ),
    ("factor-l", "(+ (* a b) (* a c))", "(* a (+ b c))", true),
    ("factor-r", "(+ (* a c) (* b c))", "(* (+ a b) c)", true),
    ("distribute-neg", "(* (- a) b)", "(- (* a b))", true),
    (
        "sub-distribute",
        "(* a (- b c))",
        "(- (* a b) (* a c))",
        false,
    ),
    ("sub-factor", "(- (* a b) (* a c))", "(* a (- b c))", true),
    // --- fractions -----------------------------------------------------------
    ("div-as-mul-recip", "(/ a b)", "(* a (/ 1 b))", false),
    ("mul-recip-as-div", "(* a (/ 1 b))", "(/ a b)", true),
    ("recip-recip", "(/ 1 (/ 1 a))", "a", true),
    ("div-div-merge", "(/ (/ a b) c)", "(/ a (* b c))", true),
    ("div-div-lift", "(/ a (/ b c))", "(/ (* a c) b)", true),
    ("frac-add", "(+ (/ a c) (/ b c))", "(/ (+ a b) c)", true),
    ("frac-sub", "(- (/ a c) (/ b c))", "(/ (- a b) c)", true),
    (
        "frac-mul",
        "(* (/ a b) (/ c d))",
        "(/ (* a c) (* b d))",
        true,
    ),
    ("div-mul-cancel", "(/ (* a b) b)", "a", true),
    ("mul-div-cancel", "(* (/ a b) b)", "a", true),
    ("neg-div", "(/ (- a) b)", "(- (/ a b))", true),
    // --- squares and square roots -------------------------------------------
    ("sqr-as-mul", "(* a a)", "(pow a 2)", true),
    ("pow2-as-mul", "(pow a 2)", "(* a a)", true),
    ("sqrt-sqr", "(sqrt (* a a))", "(fabs a)", true),
    ("sqr-sqrt", "(* (sqrt a) (sqrt a))", "a", true),
    (
        "sqrt-prod",
        "(sqrt (* a b))",
        "(* (sqrt a) (sqrt b))",
        false,
    ),
    ("prod-sqrt", "(* (sqrt a) (sqrt b))", "(sqrt (* a b))", true),
    ("sqrt-div", "(sqrt (/ a b))", "(/ (sqrt a) (sqrt b))", false),
    ("sqrt-recip", "(/ 1 (sqrt a))", "(sqrt (/ 1 a))", true),
    ("recip-sqrt", "(sqrt (/ 1 a))", "(/ 1 (sqrt a))", false),
    ("cbrt-cube", "(cbrt (* a (* a a)))", "a", true),
    (
        "hypot-def",
        "(sqrt (+ (* a a) (* b b)))",
        "(hypot a b)",
        true,
    ),
    (
        "hypot-undef",
        "(hypot a b)",
        "(sqrt (+ (* a a) (* b b)))",
        false,
    ),
    // --- difference of squares / cancellation-avoiding forms ----------------
    (
        "diff-of-squares",
        "(- (* a a) (* b b))",
        "(* (+ a b) (- a b))",
        true,
    ),
    (
        "squares-of-diff",
        "(* (+ a b) (- a b))",
        "(- (* a a) (* b b))",
        true,
    ),
    (
        "flip-sum-of-roots",
        "(- (sqrt a) (sqrt b))",
        "(/ (- a b) (+ (sqrt a) (sqrt b)))",
        false,
    ),
    (
        "flip-diff",
        "(- a b)",
        "(/ (- (* a a) (* b b)) (+ a b))",
        false,
    ),
    // --- fused multiply-add shapes -------------------------------------------
    ("fma-def", "(+ (* a b) c)", "(fma a b c)", true),
    ("fma-undef", "(fma a b c)", "(+ (* a b) c)", false),
    ("fma-neg", "(- c (* a b))", "(fma (- a) b c)", false),
    ("fms-def", "(- (* a b) c)", "(fma a b (- c))", false),
    // --- exponentials and logarithms -----------------------------------------
    ("exp-0", "(exp 0)", "1", true),
    ("exp-1", "(exp 1)", "E", true),
    ("log-1", "(log 1)", "0", true),
    ("log-E", "(log E)", "1", true),
    ("exp-log", "(exp (log a))", "a", true),
    ("log-exp", "(log (exp a))", "a", true),
    ("exp-sum", "(exp (+ a b))", "(* (exp a) (exp b))", false),
    ("prod-exp", "(* (exp a) (exp b))", "(exp (+ a b))", true),
    ("exp-diff", "(exp (- a b))", "(/ (exp a) (exp b))", false),
    ("exp-neg", "(exp (- a))", "(/ 1 (exp a))", false),
    ("log-prod", "(log (* a b))", "(+ (log a) (log b))", false),
    ("sum-log", "(+ (log a) (log b))", "(log (* a b))", true),
    ("log-div", "(log (/ a b))", "(- (log a) (log b))", false),
    ("log-recip", "(log (/ 1 a))", "(- (log a))", true),
    ("log-pow", "(log (pow a b))", "(* b (log a))", true),
    ("pow-to-exp", "(pow a b)", "(exp (* b (log a)))", false),
    ("exp-to-pow", "(exp (* b (log a)))", "(pow a b)", true),
    ("expm1-def", "(- (exp a) 1)", "(expm1 a)", true),
    ("expm1-undef", "(expm1 a)", "(- (exp a) 1)", false),
    ("log1p-def", "(log (+ 1 a))", "(log1p a)", true),
    ("log1p-undef", "(log1p a)", "(log (+ 1 a))", false),
    ("log1p-expm1", "(log1p (expm1 a))", "a", true),
    ("expm1-log1p", "(expm1 (log1p a))", "a", true),
    ("exp2-def", "(exp2 a)", "(pow 2 a)", false),
    ("pow2-def", "(pow 2 a)", "(exp2 a)", true),
    ("log2-def", "(log2 a)", "(/ (log a) (log 2))", false),
    ("log10-def", "(log10 a)", "(/ (log a) (log 10))", false),
    // --- powers ---------------------------------------------------------------
    ("pow-0", "(pow a 0)", "1", true),
    ("pow-1", "(pow a 1)", "a", true),
    ("pow-half", "(pow a 1/2)", "(sqrt a)", true),
    ("sqrt-as-pow", "(sqrt a)", "(pow a 1/2)", false),
    ("pow-neg-1", "(pow a -1)", "(/ 1 a)", true),
    ("recip-as-pow", "(/ 1 a)", "(pow a -1)", true),
    (
        "pow-prod-base",
        "(* (pow a b) (pow a c))",
        "(pow a (+ b c))",
        true,
    ),
    ("pow-pow", "(pow (pow a b) c)", "(pow a (* b c))", true),
    ("pow-cbrt", "(pow a 1/3)", "(cbrt a)", true),
    ("cbrt-as-pow", "(cbrt a)", "(pow a 1/3)", false),
    // --- trigonometry ----------------------------------------------------------
    ("sin-0", "(sin 0)", "0", true),
    ("cos-0", "(cos 0)", "1", true),
    ("sin-neg", "(sin (- a))", "(- (sin a))", true),
    ("cos-neg", "(cos (- a))", "(cos a)", true),
    ("tan-neg", "(tan (- a))", "(- (tan a))", true),
    (
        "sin-cos-pythag",
        "(+ (* (sin a) (sin a)) (* (cos a) (cos a)))",
        "1",
        true,
    ),
    ("tan-def", "(tan a)", "(/ (sin a) (cos a))", false),
    ("sin-over-cos", "(/ (sin a) (cos a))", "(tan a)", true),
    (
        "sin-sum",
        "(sin (+ a b))",
        "(+ (* (sin a) (cos b)) (* (cos a) (sin b)))",
        false,
    ),
    (
        "cos-sum",
        "(cos (+ a b))",
        "(- (* (cos a) (cos b)) (* (sin a) (sin b)))",
        false,
    ),
    (
        "sin-double",
        "(sin (* 2 a))",
        "(* 2 (* (sin a) (cos a)))",
        false,
    ),
    (
        "cos-double",
        "(cos (* 2 a))",
        "(- 1 (* 2 (* (sin a) (sin a))))",
        false,
    ),
    ("asin-sin", "(sin (asin a))", "a", true),
    ("acos-cos", "(cos (acos a))", "a", true),
    ("atan-tan", "(tan (atan a))", "a", true),
    ("atan2-def", "(atan2 a b)", "(atan (/ a b))", false),
    // --- hyperbolics ------------------------------------------------------------
    (
        "sinh-def",
        "(sinh a)",
        "(/ (- (exp a) (exp (- a))) 2)",
        false,
    ),
    (
        "cosh-def",
        "(cosh a)",
        "(/ (+ (exp a) (exp (- a))) 2)",
        false,
    ),
    ("tanh-def", "(tanh a)", "(/ (sinh a) (cosh a))", false),
    ("sinh-over-cosh", "(/ (sinh a) (cosh a))", "(tanh a)", true),
    (
        "cosh-sinh-pythag",
        "(- (* (cosh a) (cosh a)) (* (sinh a) (sinh a)))",
        "1",
        true,
    ),
    ("sinh-neg", "(sinh (- a))", "(- (sinh a))", true),
    ("cosh-neg", "(cosh (- a))", "(cosh a)", true),
    (
        "asinh-def",
        "(asinh a)",
        "(log (+ a (sqrt (+ (* a a) 1))))",
        false,
    ),
    (
        "acosh-def",
        "(acosh a)",
        "(log (+ a (sqrt (- (* a a) 1))))",
        false,
    ),
    (
        "atanh-def",
        "(atanh a)",
        "(/ (log (/ (+ 1 a) (- 1 a))) 2)",
        false,
    ),
    (
        "atanh-log1p",
        "(atanh a)",
        "(/ (- (log1p a) (log1p (- a))) 2)",
        false,
    ),
    (
        "log1p-diff-atanh",
        "(- (log1p a) (log1p (- a)))",
        "(* 2 (atanh a))",
        true,
    ),
    (
        "sinh-expm1",
        "(sinh a)",
        "(/ (- (expm1 a) (expm1 (- a))) 2)",
        false,
    ),
    (
        "tanh-expm1",
        "(tanh a)",
        "(/ (expm1 (* 2 a)) (+ (expm1 (* 2 a)) 2))",
        false,
    ),
    // --- absolute value / min / max ----------------------------------------------
    ("fabs-neg", "(fabs (- a))", "(fabs a)", true),
    ("fabs-sqr", "(fabs (* a a))", "(* a a)", true),
    ("fabs-fabs", "(fabs (fabs a))", "(fabs a)", true),
    ("fmin-self", "(fmin a a)", "a", true),
    ("fmax-self", "(fmax a a)", "a", true),
    ("fmin-commute", "(fmin a b)", "(fmin b a)", true),
    ("fmax-commute", "(fmax a b)", "(fmax b a)", true),
];

/// The full rule database (used during instruction selection).
pub fn full_rules<A: Analysis<ChassisNode>>() -> Vec<Rewrite<ChassisNode, A>> {
    RULE_TABLE
        .iter()
        .map(|(name, lhs, rhs, _)| rule(name, lhs, rhs))
        .collect()
}

/// The simplifying subset (right-hand side no larger than the left), used by the
/// cost-opportunity heuristic.
pub fn simplifying_rules<A: Analysis<ChassisNode>>() -> Vec<Rewrite<ChassisNode, A>> {
    RULE_TABLE
        .iter()
        .filter(|(_, _, _, simplifying)| *simplifying)
        .map(|(name, lhs, rhs, _)| rule(name, lhs, rhs))
        .collect()
}

/// Number of rules in the full database.
pub fn rule_count() -> usize {
    RULE_TABLE.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::expr_to_rec;
    use egraph::{EGraph, NoAnalysis, Runner, RunnerLimits};
    use fpcore::parse_expr;

    fn saturate(
        src: &str,
        rules: &[Rewrite<ChassisNode, NoAnalysis>],
    ) -> (EGraph<ChassisNode, NoAnalysis>, egraph::Id) {
        let expr = parse_expr(src).unwrap();
        let rec = expr_to_rec(&expr);
        let mut eg: EGraph<ChassisNode, NoAnalysis> = EGraph::default();
        let root = eg.add_expr(&rec);
        let limits = RunnerLimits {
            iter_limit: 6,
            node_limit: 5_000,
            ..RunnerLimits::default()
        };
        Runner::with_limits(limits).run(&mut eg, rules);
        (eg, root)
    }

    fn equivalent(src_a: &str, src_b: &str) -> bool {
        let rules = full_rules::<NoAnalysis>();
        let expr_b = parse_expr(src_b).unwrap();
        let rec_b = expr_to_rec(&expr_b);
        let (mut eg, root_a) = saturate(src_a, &rules);
        let root_b = eg.add_expr(&rec_b);
        // Adding b may enable more merges; a short follow-up run lets congruence
        // identify the two roots if they are joinable.
        Runner::with_limits(RunnerLimits {
            iter_limit: 4,
            node_limit: 6_000,
            ..RunnerLimits::default()
        })
        .run(&mut eg, &rules);
        eg.find(root_a) == eg.find(root_b)
    }

    #[test]
    fn rule_table_is_well_formed() {
        assert!(rule_count() > 100, "expected a substantial rule database");
        // Every rule must parse and have rhs variables bound by the lhs; this is
        // checked by construction.
        let rules = full_rules::<NoAnalysis>();
        assert_eq!(rules.len(), rule_count());
        assert!(simplifying_rules::<NoAnalysis>().len() < rules.len());
    }

    #[test]
    fn herbie_classic_sqrt_rewrite_is_reachable() {
        // sqrt(x+1) - sqrt(x) should join (x+1-x) / (sqrt(x+1)+sqrt(x)) ... the
        // classic cancellation-avoiding form, here checked in its factored shape.
        assert!(equivalent(
            "(- (sqrt (+ x 1)) (sqrt x))",
            "(/ (- (+ x 1) x) (+ (sqrt (+ x 1)) (sqrt x)))"
        ));
    }

    #[test]
    fn arithmetic_identities_join() {
        assert!(equivalent("(+ a 0)", "a"));
        assert!(equivalent("(* (+ a b) (- a b))", "(- (* a a) (* b b))"));
        assert!(equivalent("(/ a b)", "(* a (/ 1 b))"));
        assert!(equivalent("(+ (* a b) c)", "(fma a b c)"));
    }

    #[test]
    fn log_exp_identities_join() {
        assert!(equivalent("(log (exp a))", "a"));
        assert!(equivalent("(- (exp a) 1)", "(expm1 a)"));
        assert!(equivalent("(log (+ 1 a))", "(log1p a)"));
    }

    #[test]
    fn acoth_kernel_identity_joins() {
        // The overview example: log1p(x) - log1p(-x) = 2*atanh(x), which is what
        // lets Chassis select fdlibm's log1pmd operator.
        assert!(equivalent("(- (log1p x) (log1p (- x)))", "(* 2 (atanh x))"));
    }

    #[test]
    fn simplifying_rules_do_not_grow_terms() {
        for (name, lhs, rhs, simplifying) in super::RULE_TABLE {
            if *simplifying {
                let l = parse_expr(lhs).unwrap().size();
                let r = parse_expr(rhs).unwrap().size();
                assert!(r <= l, "simplifying rule {name} grows the AST ({l} -> {r})");
            }
        }
    }
}
