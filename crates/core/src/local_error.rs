//! The local error heuristic (paper Section 5.2, originally from Herbie).
//!
//! Local error measures how much error each *operator* introduces in isolation:
//! for an operator node `f(c1, ..., cn)`, evaluate the children exactly (ground
//! truth of their desugarings), round them to the operator's argument types,
//! apply the target's floating-point operator, and compare against the correctly
//! rounded value of the node's own desugaring. Operators are therefore not blamed
//! for error introduced by their arguments.

use crate::sample::{GroundTruthCache, SampleSet};
use fpcore::Symbol;
use rival::GroundTruth;
use targets::operator::{arg_symbol, round_to_type};
use targets::{Columns, FloatExpr, Target};

/// A subexpression of a candidate paired with its heuristic score.
#[derive(Clone, Debug)]
pub struct ScoredSubexpr {
    /// The operator subexpression (a [`FloatExpr::Op`] node).
    pub expr: FloatExpr,
    /// The score (mean bits of local error, or cost-opportunity units).
    pub score: f64,
}

/// Enumerates the operator subexpressions of a program, innermost first.
pub fn operator_subexpressions(expr: &FloatExpr) -> Vec<FloatExpr> {
    fn walk(expr: &FloatExpr, out: &mut Vec<FloatExpr>) {
        match expr {
            FloatExpr::Num(_, _) | FloatExpr::Var(_, _) => {}
            FloatExpr::Op(_, args) => {
                for a in args {
                    walk(a, out);
                }
                if !out.contains(expr) {
                    out.push(expr.clone());
                }
            }
            FloatExpr::Cmp(_, a, b) => {
                walk(a, out);
                walk(b, out);
            }
            FloatExpr::If(c, t, e) => {
                walk(c, out);
                walk(t, out);
                walk(e, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Computes the local error of every operator subexpression of `candidate`,
/// averaged over the training points, with a throwaway ground-truth cache.
/// Returns one entry per distinct operator node, sorted by decreasing score.
pub fn local_errors(
    target: &Target,
    candidate: &FloatExpr,
    samples: &SampleSet,
) -> Vec<ScoredSubexpr> {
    local_errors_cached(
        target,
        candidate,
        samples,
        &GroundTruthCache::for_training(samples),
    )
}

/// [`local_errors`] against a shared [`GroundTruthCache`].
///
/// The expensive step is Rival ground truth of each subexpression's real
/// desugaring over the training points; under a session the same real
/// subexpressions recur across candidates, iterations, and *targets*, so the
/// cache (which must cover `samples.train`) turns all but the first request
/// into a lookup. Results are bit-identical to the uncached path.
pub fn local_errors_cached(
    target: &Target,
    candidate: &FloatExpr,
    samples: &SampleSet,
    truths: &GroundTruthCache,
) -> Vec<ScoredSubexpr> {
    debug_assert_eq!(
        truths.points().len(),
        samples.train.len(),
        "the ground-truth cache must cover the training points"
    );
    let subexprs = operator_subexpressions(candidate);
    let mut scored = Vec::with_capacity(subexprs.len());
    for sub in subexprs {
        let (op_id, args) = match &sub {
            FloatExpr::Op(id, args) => (*id, args),
            _ => continue,
        };
        let op = target.operator(op_id);
        let node_real = sub.desugar(target);
        let arg_reals: Vec<fpcore::Expr> = args.iter().map(|a| a.desugar(target)).collect();
        // The operator applied to opaque arguments, compiled to bytecode once
        // per subexpression: we feed it the exactly computed (and already
        // rounded) argument values instead of re-walking the operator's
        // desugaring tree. Re-rounding the pre-rounded arguments is the
        // identity, so this matches `op.execute` bit for bit.
        let arg_syms: Vec<Symbol> = (0..op.arity()).map(arg_symbol).collect();
        let node_prog = targets::compile(
            target,
            &FloatExpr::Op(
                op_id,
                arg_syms
                    .iter()
                    .zip(&op.arg_types)
                    .map(|(sym, ty)| FloatExpr::Var(*sym, *ty))
                    .collect(),
            ),
        );
        // Pass 1 (the expensive part): ground-truth the node and its arguments
        // over all training points — one Rival sweep per distinct real
        // expression, memoized in `truths` — then keep the points where
        // everything was decidable.
        let node_truths = truths.ground_truths(&node_real, op.ret_type);
        let arg_truths: Vec<_> = arg_reals
            .iter()
            .zip(&op.arg_types)
            .map(|(real, ty)| truths.ground_truths(real, *ty))
            .collect();
        let mut arg_rows: Vec<Vec<f64>> = Vec::with_capacity(samples.train.len());
        let mut exact_nodes: Vec<f64> = Vec::with_capacity(samples.train.len());
        'points: for point in 0..samples.train.len() {
            // Exact value of the node itself.
            let exact_node = match node_truths[point] {
                GroundTruth::Value(v) => v,
                GroundTruth::Nan => f64::NAN,
                GroundTruth::Unsamplable => continue,
            };
            // Exact values of the arguments, rounded to the argument types.
            let mut exact_args = Vec::with_capacity(arg_reals.len());
            for (arg_truth, ty) in arg_truths.iter().zip(&op.arg_types) {
                match arg_truth[point] {
                    GroundTruth::Value(v) => exact_args.push(round_to_type(v, *ty)),
                    GroundTruth::Nan => exact_args.push(f64::NAN),
                    GroundTruth::Unsamplable => continue 'points,
                }
            }
            arg_rows.push(exact_args);
            exact_nodes.push(exact_node);
        }
        // Pass 2: apply the target operator to the exact arguments on the
        // block engine — the kept points become a columnar batch (one column
        // per argument) swept in blocks.
        let exact_arg_columns = Columns::from_rows(op.arity(), &arg_rows);
        let local_outs = node_prog.eval_columns(&arg_syms, &exact_arg_columns);
        let total: f64 = local_outs
            .iter()
            .zip(&exact_nodes)
            .map(|(out, exact)| crate::accuracy::bits_of_error(*out, *exact, op.ret_type))
            .sum();
        let score = if exact_nodes.is_empty() {
            0.0
        } else {
            total / exact_nodes.len() as f64
        };
        scored.push(ScoredSubexpr { expr: sub, score });
    }
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_fpcore;
    use crate::sample::Sampler;
    use fpcore::parse_fpcore;
    use targets::builtin;

    #[test]
    fn subexpression_enumeration() {
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        let subs = operator_subexpressions(&prog);
        // +, sqrt(x+1), sqrt(x), and the outer subtraction.
        assert_eq!(subs.len(), 4);
        // Innermost-first: the addition comes before the outer subtraction.
        assert!(subs[0].size() < subs.last().unwrap().size());
    }

    #[test]
    fn cancellation_blames_the_subtraction() {
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore(
            "(FPCore (x) :pre (and (> x 1e10) (< x 1e15)) (- (sqrt (+ x 1)) (sqrt x)))",
        )
        .unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        let samples = Sampler::new(1).sample(&core, 8, 2).unwrap();
        let scored = local_errors(&t, &prog, &samples);
        assert!(!scored.is_empty());
        // The highest-scoring node must be the outer subtraction: the square roots
        // and the addition are individually accurate; the subtraction cancels.
        let worst = &scored[0];
        let rendered = worst.expr.render(&t);
        assert!(
            rendered.starts_with("(-.f64"),
            "expected the subtraction to be blamed, got {rendered} (score {})",
            worst.score
        );
        assert!(worst.score > 5.0, "cancellation should cost many bits");
        // The addition x+1 introduces almost no local error.
        let add_score = scored
            .iter()
            .find(|s| s.expr.render(&t).starts_with("(+.f64"))
            .map_or(0.0, |s| s.score);
        assert!(add_score < 1.0, "x+1 is locally accurate, got {add_score}");
    }
}
