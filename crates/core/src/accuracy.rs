//! Accuracy measurement: ULP distance and bits of error against ground truth.
//!
//! Chassis (like Herbie) measures the error of a floating-point result against
//! the correctly rounded real result in *units in the last place* (ULPs), and
//! aggregates `log2(1 + ulps)` — "bits of error" — over the sample points. The
//! paper reports accuracy as `p − log2 ULP` where `p` is the output precision.

use crate::par;
use crate::sample::SampleSet;
use fpcore::{FpType, Symbol};
use targets::{Columns, CompileOptions, FloatExpr, Target};

/// Maps a float to an ordered integer such that adjacent floats map to adjacent
/// integers (the standard "Bruce Dawson" trick), making ULP distance a simple
/// subtraction.
fn ordered_bits_f64(x: f64) -> i64 {
    let bits = x.to_bits() as i64;
    if bits < 0 {
        i64::MIN.wrapping_add(bits.wrapping_neg())
    } else {
        bits
    }
}

fn ordered_bits_f32(x: f32) -> i64 {
    let bits = x.to_bits() as i32 as i64;
    if bits < 0 {
        -(bits & 0x7fff_ffff)
    } else {
        bits
    }
}

/// ULP distance between two values in the given representation.
///
/// NaN compared with NaN is zero ULPs; NaN compared with a number is the maximum
/// error for the format.
pub fn ulps_between(a: f64, b: f64, ty: FpType) -> u64 {
    if a.is_nan() && b.is_nan() {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return max_ulps(ty);
    }
    match ty {
        FpType::Binary32 => {
            let (a, b) = (a as f32, b as f32);
            if a == b {
                return 0;
            }
            // The ordered-f32 line spans ~2^32 values, so a finite/finite
            // mismatch (e.g. -inf rounded vs +inf rounded) could otherwise
            // report *more* ULPs than the supposedly maximal NaN-vs-number
            // error; clamp so NaN stays the worst case.
            (ordered_bits_f32(a) - ordered_bits_f32(b))
                .unsigned_abs()
                .min(max_ulps(ty))
        }
        _ => {
            if a == b {
                return 0;
            }
            // Widen to i128 before subtracting: the ordered-f64 line spans
            // ~2^64 values, so an i64 difference of opposite-sign extremes
            // wraps (e.g. -inf vs +inf came out as 2^53) and would make a
            // sign-flipped catastrophic answer score *better* than a merely
            // wrong one. Clamp for the same reason as Binary32.
            let diff = (ordered_bits_f64(a) as i128 - ordered_bits_f64(b) as i128).unsigned_abs();
            diff.min(max_ulps(ty) as u128) as u64
        }
    }
}

/// The ULP distance treated as "maximal" for a format (spanning the whole range).
pub fn max_ulps(ty: FpType) -> u64 {
    match ty {
        FpType::Binary32 => 1 << 31,
        _ => 1 << 62,
    }
}

/// Bits of error: `log2(1 + ulps)`, clamped to the precision-dependent maximum
/// used by Herbie's reports (64 bits for binary64, 32 for binary32).
pub fn bits_of_error(actual: f64, truth: f64, ty: FpType) -> f64 {
    let ulps = ulps_between(actual, truth, ty);
    let bits = ((ulps as f64) + 1.0).log2();
    bits.min(max_bits(ty))
}

/// The maximum bits of error reported for a format.
pub fn max_bits(ty: FpType) -> f64 {
    match ty {
        FpType::Binary32 => 32.0,
        _ => 64.0,
    }
}

/// The bits of error of a program at every point of a columnar batch, in
/// point order.
///
/// The program is compiled to bytecode once ([`targets::compile_with_options()`]
/// — by default dead-code elimination plus register compaction, both
/// bit-identity preserving) and the immutable compiled form is shared by every
/// worker; points are then scored
/// in blocks ([`targets::block`]): each worker sweeps its contiguous share of
/// the batch against a per-worker columnar register file, one instruction
/// dispatch per block rather than per point, with zero allocation in the
/// steady state. The block engine is bit-identical to the scalar bytecode
/// engine and the tree-walk interpreter at every block width, so the error
/// vector is the same whatever the thread count, block width, or optimization
/// level.
pub fn per_point_errors(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    points: &Columns,
    truths: &[f64],
    ty: FpType,
) -> Vec<f64> {
    per_point_errors_with(
        target,
        expr,
        vars,
        points,
        truths,
        ty,
        &CompileOptions::default(),
    )
}

/// [`per_point_errors`] with explicit [`CompileOptions`] (opt level, verifier
/// mode, block width override), as threaded down from the session layer's
/// [`SearchControl`](crate::session::SearchControl).
#[allow(clippy::too_many_arguments)]
pub fn per_point_errors_with(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    points: &Columns,
    truths: &[f64],
    ty: FpType,
    options: &CompileOptions,
) -> Vec<f64> {
    assert_eq!(
        points.len(),
        truths.len(),
        "each point needs a ground truth"
    );
    let (program, _) = targets::compile_with_options(target, expr, options);
    let columns = program.bind_columns(vars);
    let block = options.block_width_for(points.len());
    par::par_map_blocks_with(
        points.len(),
        block,
        || program.new_block_regs(block),
        |regs, start, out| {
            program.eval_block(&columns, points, start, regs, out);
            for (l, slot) in out.iter_mut().enumerate() {
                *slot = bits_of_error(*slot, truths[start + l], ty);
            }
        },
    )
}

/// The mean bits of error of a program over points with known ground truth.
///
/// Evaluation runs on the block engine (see [`per_point_errors`]); the
/// per-point errors are always summed in point order, so the result is
/// bit-identical whatever the thread count or block width.
pub fn mean_bits_of_error(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    points: &Columns,
    truths: &[f64],
    ty: FpType,
) -> f64 {
    mean_bits_of_error_with(
        target,
        expr,
        vars,
        points,
        truths,
        ty,
        &CompileOptions::default(),
    )
}

/// [`mean_bits_of_error`] with explicit [`CompileOptions`].
#[allow(clippy::too_many_arguments)]
pub fn mean_bits_of_error_with(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    points: &Columns,
    truths: &[f64],
    ty: FpType,
    options: &CompileOptions,
) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let bits = per_point_errors_with(target, expr, vars, points, truths, ty, options);
    bits.iter().sum::<f64>() / points.len() as f64
}

/// Accuracy in the paper's reporting convention: `p − mean bits of error`,
/// clamped at zero.
pub fn accuracy_bits(mean_error_bits: f64, ty: FpType) -> f64 {
    let p = match ty {
        FpType::Binary32 => 24.0,
        _ => 53.0,
    };
    (p - mean_error_bits).max(0.0)
}

/// Evaluates a candidate on the training set, returning
/// `(mean bits of error, accuracy)`.
pub fn evaluate_on_train(target: &Target, expr: &FloatExpr, samples: &SampleSet) -> (f64, f64) {
    evaluate_on_train_with(target, expr, samples, &CompileOptions::default())
}

/// [`evaluate_on_train`] with explicit [`CompileOptions`].
pub fn evaluate_on_train_with(
    target: &Target,
    expr: &FloatExpr,
    samples: &SampleSet,
    options: &CompileOptions,
) -> (f64, f64) {
    let err = mean_bits_of_error_with(
        target,
        expr,
        &samples.vars,
        &samples.train,
        &samples.train_truth,
        samples.output_type,
        options,
    );
    (err, accuracy_bits(err, samples.output_type))
}

/// Evaluates a candidate on the held-out test set.
pub fn evaluate_on_test(target: &Target, expr: &FloatExpr, samples: &SampleSet) -> (f64, f64) {
    evaluate_on_test_with(target, expr, samples, &CompileOptions::default())
}

/// [`evaluate_on_test`] with explicit [`CompileOptions`].
pub fn evaluate_on_test_with(
    target: &Target,
    expr: &FloatExpr,
    samples: &SampleSet,
    options: &CompileOptions,
) -> (f64, f64) {
    let err = mean_bits_of_error_with(
        target,
        expr,
        &samples.vars,
        &samples.test,
        &samples.test_truth,
        samples.output_type,
        options,
    );
    (err, accuracy_bits(err, samples.output_type))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulps_between(1.0, 1.0, FpType::Binary64), 0);
        assert_eq!(
            ulps_between(1.0, f64::from_bits(1.0f64.to_bits() + 1), FpType::Binary64),
            1
        );
        assert_eq!(ulps_between(0.0, -0.0, FpType::Binary64), 0);
        // Crossing zero counts the representable values in between.
        let tiny = f64::from_bits(1);
        assert_eq!(ulps_between(tiny, -tiny, FpType::Binary64), 2);
        assert_eq!(ulps_between(f64::NAN, f64::NAN, FpType::Binary64), 0);
        assert_eq!(
            ulps_between(f64::NAN, 1.0, FpType::Binary64),
            max_ulps(FpType::Binary64)
        );
    }

    #[test]
    fn binary32_ulps_are_coarser() {
        let a = 1.0f64;
        let b = 1.0f64 + 1e-9;
        // Adjacent in f32 terms (identical, actually), far apart in f64 terms.
        assert_eq!(ulps_between(a, b, FpType::Binary32), 0);
        assert!(ulps_between(a, b, FpType::Binary64) > 1_000_000);
    }

    #[test]
    fn bits_of_error_scale() {
        assert_eq!(bits_of_error(1.0, 1.0, FpType::Binary64), 0.0);
        let one_ulp = f64::from_bits(1.0f64.to_bits() + 1);
        assert_eq!(bits_of_error(one_ulp, 1.0, FpType::Binary64), 1.0);
        let nan_err = bits_of_error(f64::NAN, 1.0, FpType::Binary64);
        assert!(
            (60.0..=64.0).contains(&nan_err),
            "NaN mismatch should be maximal, got {nan_err}"
        );
    }

    #[test]
    fn accuracy_reporting() {
        assert_eq!(accuracy_bits(0.0, FpType::Binary64), 53.0);
        assert_eq!(accuracy_bits(10.0, FpType::Binary64), 43.0);
        assert_eq!(accuracy_bits(60.0, FpType::Binary64), 0.0);
        assert_eq!(accuracy_bits(0.0, FpType::Binary32), 24.0);
    }

    #[test]
    fn finite_mismatch_never_exceeds_nan_error() {
        // -inf vs +inf (after rounding to f32) spans nearly the whole ordered
        // line; without clamping this reported more ULPs than NaN-vs-number.
        let worst = ulps_between(f64::NEG_INFINITY, f64::INFINITY, FpType::Binary32);
        assert_eq!(worst, max_ulps(FpType::Binary32));
        assert!(worst <= ulps_between(f64::NAN, 1.0, FpType::Binary32));
        assert_eq!(
            ulps_between(-f32::MAX as f64, f32::MAX as f64, FpType::Binary32),
            max_ulps(FpType::Binary32)
        );
        // Binary64: the i64 ordered-bit difference of opposite-sign extremes
        // used to wrap to 2^53, scoring a sign-flipped catastrophe as *less*
        // wrong than a modest error; the widened difference must clamp at the
        // maximum instead.
        assert_eq!(
            ulps_between(f64::NEG_INFINITY, f64::INFINITY, FpType::Binary64),
            max_ulps(FpType::Binary64)
        );
        assert_eq!(
            ulps_between(-f64::MAX, f64::MAX, FpType::Binary64),
            max_ulps(FpType::Binary64)
        );
        // Monotonicity across the wrap-prone region: -inf is farther from a
        // large positive truth than +1.0 is.
        assert!(
            ulps_between(1e308, f64::NEG_INFINITY, FpType::Binary64)
                > ulps_between(1e308, 1.0, FpType::Binary64)
        );
    }

    #[test]
    fn program_error_measurement() {
        use targets::builtin;
        let t = builtin::by_name("c99").unwrap();
        let sub = t.find_operator("-.f64").unwrap();
        let sqrt = t.find_operator("sqrt.f64").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), FpType::Binary64);
        // The cancellation-prone sqrt(x+1) - sqrt(x).
        let naive = FloatExpr::Op(
            sub,
            vec![
                FloatExpr::Op(
                    sqrt,
                    vec![FloatExpr::Op(
                        add,
                        vec![x.clone(), FloatExpr::literal(1.0, FpType::Binary64)],
                    )],
                ),
                FloatExpr::Op(sqrt, vec![x.clone()]),
            ],
        );
        let vars = [Symbol::new("x")];
        let rows: Vec<Vec<f64>> = vec![vec![1e15], vec![4e15]];
        let truths: Vec<f64> = rows
            .iter()
            .map(|p| {
                let x = p[0];
                1.0 / ((x + 1.0).sqrt() + x.sqrt())
            })
            .collect();
        let points = Columns::from_rows(1, &rows);
        let err = mean_bits_of_error(&t, &naive, &vars, &points, &truths, FpType::Binary64);
        assert!(
            err > 10.0,
            "the naive form should lose many bits, got {err}"
        );
    }

    #[test]
    fn parallel_mean_error_is_bit_identical_to_serial() {
        use targets::builtin;
        let _guard = crate::par::test_lock();
        let t = builtin::by_name("c99").unwrap();
        let sub = t.find_operator("-.f64").unwrap();
        let sqrt = t.find_operator("sqrt.f64").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), FpType::Binary64);
        let naive = FloatExpr::Op(
            sub,
            vec![
                FloatExpr::Op(
                    sqrt,
                    vec![FloatExpr::Op(
                        add,
                        vec![x.clone(), FloatExpr::literal(1.0, FpType::Binary64)],
                    )],
                ),
                FloatExpr::Op(sqrt, vec![x]),
            ],
        );
        let vars = [Symbol::new("x")];
        // A fixed, irregularly sized sample set spanning many magnitudes (not
        // a multiple of the block width, so the ragged tail is exercised).
        let rows: Vec<Vec<f64>> = (0..257)
            .map(|i| vec![10f64.powf((i % 31) as f64 / 2.0) * (1.0 + i as f64 * 1e-3)])
            .collect();
        let truths: Vec<f64> = rows
            .iter()
            .map(|p| {
                let x = p[0];
                1.0 / ((x + 1.0).sqrt() + x.sqrt())
            })
            .collect();
        let points = Columns::from_rows(1, &rows);
        crate::par::set_thread_count(1);
        let serial = mean_bits_of_error(&t, &naive, &vars, &points, &truths, FpType::Binary64);
        for threads in [2, 3, 8] {
            crate::par::set_thread_count(threads);
            let parallel =
                mean_bits_of_error(&t, &naive, &vars, &points, &truths, FpType::Binary64);
            assert_eq!(
                serial.to_bits(),
                parallel.to_bits(),
                "mean error differs at {threads} threads: {serial} vs {parallel}"
            );
        }
        crate::par::set_thread_count(0);
    }
}
