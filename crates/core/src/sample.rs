//! Input sampling (shared with Herbie; paper Section 2).
//!
//! Chassis samples training and test points from the expression's input domain:
//! values are drawn uniformly over the representable floats (plus a share of
//! moderate-magnitude values), filtered by the FPCore precondition, and kept only
//! when the ground-truth evaluator can produce a finite correctly rounded result
//! (points whose true value is NaN or undecidable are discarded, as in Herbie).

// On the `compile_many` call path: sampling failures are typed
// `SampleError`s and poisoned cache locks recover (docs/RESILIENCE.md).
#![deny(clippy::unwrap_used, clippy::expect_used)]
use crate::par;
use crate::rng::Rng;
use fpcore::{FPCore, FpType, Symbol};
use rival::adaptive::{ExactRow, NodeIndex};
use rival::{balance_if_deep, Evaluator, GroundTruth};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use targets::Columns;

/// A set of sampled points with their ground-truth results.
///
/// Points are stored columnar ([`Columns`]): one contiguous `f64` column per
/// variable, the layout the block evaluator consumes directly — the sampled
/// batch is transposed once here and never re-shaped (or re-allocated
/// per point) by any downstream consumer.
#[derive(Clone, Debug)]
pub struct SampleSet {
    /// Variable order used by the point columns.
    pub vars: Vec<Symbol>,
    /// Output representation used for ground truth.
    pub output_type: FpType,
    /// Training points (used to guide the search), one column per variable.
    pub train: Columns,
    /// Correctly rounded value of the input expression at each training point.
    pub train_truth: Vec<f64>,
    /// Held-out test points (used for reporting), one column per variable.
    pub test: Columns,
    /// Correctly rounded value at each test point.
    pub test_truth: Vec<f64>,
}

impl SampleSet {
    /// Number of training points.
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// Number of test points.
    pub fn test_len(&self) -> usize {
        self.test.len()
    }
}

/// Why sampling failed.
///
/// The variants classify *why* the domain yielded too few points, so callers
/// can distinguish a benchmark whose precondition admits nothing
/// ([`EmptyDomain`](SampleError::EmptyDomain)) from one whose ground truth
/// never converges ([`GroundTruth`](SampleError::GroundTruth)) from plain
/// scarcity ([`NotEnoughPoints`](SampleError::NotEnoughPoints)).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SampleError {
    /// Too few valid points were found (precondition too tight, or the expression
    /// is NaN almost everywhere).
    NotEnoughPoints {
        /// How many valid points were found.
        found: usize,
        /// How many were requested.
        requested: usize,
    },
    /// Not a single candidate satisfied the precondition: the domain is empty
    /// (or a measure-zero point set, e.g. `:pre (== x 1)`).
    EmptyDomain {
        /// How many candidate points were tried.
        attempts: usize,
    },
    /// Points satisfied the precondition, but the dominant failure was
    /// Rival's precision ladder topping out undecided.
    GroundTruth(rival::TruthError),
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::NotEnoughPoints { found, requested } => write!(
                f,
                "could not sample enough valid points ({found} of {requested})"
            ),
            SampleError::EmptyDomain { attempts } => write!(
                f,
                "no candidate point satisfied the precondition ({attempts} attempts)"
            ),
            SampleError::GroundTruth(e) => write!(f, "ground truth failed while sampling: {e}"),
        }
    }
}

impl std::error::Error for SampleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SampleError::GroundTruth(e) => Some(e),
            SampleError::NotEnoughPoints { .. } | SampleError::EmptyDomain { .. } => None,
        }
    }
}

/// What became of one sampling attempt (see [`Sampler::attempt`]).
enum Attempt {
    /// The point satisfied the precondition and ground-truthed to a finite
    /// value.
    Accepted(Vec<f64>, f64),
    /// The precondition rejected the point (or could not be decided).
    PreFailed,
    /// The true result is NaN or infinite — a discarded point, as in Herbie.
    Invalid,
    /// The precision ladder topped out without deciding the rounding.
    NonConverged,
}

/// Samples valid input points for an FPCore benchmark.
///
/// Each candidate attempt draws from its own RNG stream derived from
/// `(seed, attempt index)`, so the accepted point set depends only on the seed —
/// not on how attempts are batched across worker threads.
#[derive(Clone, Debug)]
pub struct Sampler {
    seed: u64,
    /// First unused attempt stream; advanced by every `sample` call so repeated
    /// calls on one sampler draw fresh points (matching the pre-parallel
    /// behavior where the RNG advanced between calls).
    next_stream: u64,
    evaluator: Evaluator,
}

impl Sampler {
    /// A sampler with the given RNG seed (results are deterministic per seed).
    pub fn new(seed: u64) -> Sampler {
        Sampler {
            seed,
            next_stream: 0,
            evaluator: Evaluator::with_precisions(vec![96, 192, 384, 768]),
        }
    }

    /// Draws one candidate value for a variable: a quarter of the time a uniformly
    /// random finite float (Herbie-style "sample the representation"), otherwise a
    /// moderate-magnitude value where most benchmark preconditions are satisfied
    /// (benchmark domains are overwhelmingly positive and within a few orders of
    /// magnitude of 1, so biasing the proposal distribution there keeps rejection
    /// sampling cheap without changing which points are *accepted*).
    fn draw(rng: &mut Rng, ty: FpType) -> f64 {
        let value = match rng.below(4) {
            0 => loop {
                // Uniform over bit patterns, rejecting NaN and infinity.
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    break v;
                }
            },
            1 => rng.range_f64(-1e3, 1e3),
            _ => {
                // Log-uniform magnitude in [1e-6, 1e6), mostly positive.
                let exp = rng.range_f64(-6.0, 6.0);
                let sign = if rng.next_f64() < 0.75 { 1.0 } else { -1.0 };
                sign * 10f64.powf(exp)
            }
        };
        match ty {
            FpType::Binary32 => value as f32 as f64,
            _ => value,
        }
    }

    /// Draws, filters, and ground-truths one attempt from its own RNG stream.
    fn attempt(&self, core: &FPCore, vars: &[Symbol], types: &[FpType], index: u64) -> Attempt {
        let mut rng = Rng::for_stream(self.seed, index);
        let point: Vec<f64> = types.iter().map(|ty| Self::draw(&mut rng, *ty)).collect();
        let env: Vec<(Symbol, f64)> = vars.iter().copied().zip(point.iter().copied()).collect();
        if let Some(pre) = &core.pre {
            match self.evaluator.eval_bool(pre, &env) {
                Some(true) => {}
                _ => return Attempt::PreFailed,
            }
        }
        match self.evaluator.eval(&core.body, &env, core.precision) {
            GroundTruth::Value(v) if v.is_finite() => Attempt::Accepted(point, v),
            GroundTruth::Value(_) | GroundTruth::Nan => Attempt::Invalid,
            GroundTruth::Unsamplable => Attempt::NonConverged,
        }
    }

    /// Samples `train + test` valid points for `core`.
    ///
    /// Attempts are evaluated in parallel batches (ground-truthing a candidate
    /// point is the expensive step), then accepted in attempt order until the
    /// request is filled, which keeps the result independent of thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SampleError::NotEnoughPoints`] when fewer than a quarter of the
    /// requested points could be found within the attempt budget.
    pub fn sample(
        &mut self,
        core: &FPCore,
        train: usize,
        test: usize,
    ) -> Result<SampleSet, SampleError> {
        let vars = core.arg_names();
        let types: Vec<FpType> = core.args.iter().map(|(_, t)| *t).collect();
        let requested = train + test;
        let mut points: Vec<Vec<f64>> = Vec::with_capacity(requested);
        let mut truths: Vec<f64> = Vec::with_capacity(requested);
        let max_attempts = requested * 400 + 2_000;
        // Ground-truthing a candidate is the expensive step, so overshoot is
        // waste: start a little above the request (acceptance is often high)
        // and resize each batch from the observed acceptance rate. Because
        // candidates are accepted in attempt order, batching cannot change
        // *which* points are accepted — only how many attempts are evaluated.
        let mut batch_size = (requested + requested / 2).clamp(8, 1024);
        let base_stream = self.next_stream;
        let mut attempts = 0usize;
        let mut pre_passed = 0usize;
        let mut non_converged = 0usize;
        while points.len() < requested && attempts < max_attempts {
            // Chaos harness: an armed abort ends the attempt budget early —
            // the shortfall (if any) surfaces as a typed `SampleError` below.
            if fault::point("sample.points") {
                break;
            }
            let batch = batch_size.min(max_attempts - attempts);
            let candidates = par::par_map_range(batch, |i| {
                self.attempt(core, &vars, &types, base_stream + (attempts + i) as u64)
            });
            for outcome in candidates {
                match outcome {
                    Attempt::Accepted(point, truth) => {
                        pre_passed += 1;
                        if points.len() < requested {
                            points.push(point);
                            truths.push(truth);
                        }
                    }
                    Attempt::Invalid => pre_passed += 1,
                    Attempt::NonConverged => {
                        pre_passed += 1;
                        non_converged += 1;
                    }
                    Attempt::PreFailed => {}
                }
            }
            attempts += batch;
            let remaining = requested - points.len();
            if remaining > 0 {
                let rate = points.len() as f64 / attempts as f64;
                batch_size = if rate > 0.0 {
                    ((remaining as f64 / rate) * 1.25).ceil() as usize
                } else {
                    batch_size.saturating_mul(2)
                }
                .clamp(8, 1024);
            }
        }
        self.next_stream = base_stream + attempts as u64;
        if points.len() < (requested / 4).max(2) {
            // Classify the shortfall: an empty domain (nothing ever passed
            // the precondition), dominant ground-truth non-convergence, or
            // plain scarcity.
            if pre_passed == 0 {
                return Err(SampleError::EmptyDomain { attempts });
            }
            if non_converged > points.len() && non_converged * 2 >= pre_passed {
                let max_precision = self.evaluator.precisions().last().copied().unwrap_or(0);
                return Err(SampleError::GroundTruth(rival::TruthError::NonConverged {
                    points: non_converged,
                    max_precision,
                }));
            }
            return Err(SampleError::NotEnoughPoints {
                found: points.len(),
                requested,
            });
        }
        // Split into train / test, keeping the requested proportions when
        // short, and transpose the accepted rows into the columnar layout the
        // evaluation pipeline consumes.
        let train_len = ((points.len() * train) / requested).max(1);
        let test_truths = truths.split_off(train_len.min(truths.len()));
        let (train_points, test_points) =
            Columns::from_rows(vars.len(), &points).split_at(train_len);
        Ok(SampleSet {
            vars,
            output_type: core.precision,
            train: train_points,
            train_truth: truths,
            test: test_points,
            test_truth: test_truths,
        })
    }

    /// Recomputes ground truth for an arbitrary real expression over existing
    /// points (used by the accuracy evaluation of candidate programs whose
    /// desugaring differs from the original only by real-equivalent rewrites, and
    /// by the local-error heuristic for subexpressions).
    pub fn ground_truths(
        &self,
        expr: &fpcore::Expr,
        vars: &[Symbol],
        points: &Columns,
        ty: FpType,
    ) -> Vec<GroundTruth> {
        par::par_map_range(points.len(), |i| {
            let env: Vec<(Symbol, f64)> = vars
                .iter()
                .enumerate()
                .map(|(v, sym)| (*sym, points.value(i, v)))
                .collect();
            self.evaluator.eval(expr, &env, ty)
        })
    }
}

/// Which ground-truth evaluation engine a [`GroundTruthCache`] uses on a
/// cache miss. Both produce bit-identical [`GroundTruth`]s; they differ only
/// in how much work they do to get there.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub enum TruthEngine {
    /// Re-evaluate the whole expression at every rung of the precision
    /// ladder (the classic Rival loop). Kept as the reference engine.
    Uniform,
    /// Reval-style mixed precision: per-node convergence tracking, so only
    /// nodes that have not converged are re-evaluated at higher rungs;
    /// converged subexpression values are reused across candidates,
    /// iterations, and targets; deep associative chains are rebalanced
    /// before evaluation (with fallback to the original tree whenever the
    /// balanced evaluation does not produce a definite value).
    #[default]
    Adaptive,
}

/// Work counters for a [`GroundTruthCache`] — the observable effect of the
/// memo, the adaptive engine, and DAG balancing.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TruthStats {
    /// Requests answered from the memo.
    pub hits: usize,
    /// Requests that ran a Rival sweep.
    pub misses: usize,
    /// Interval node evaluations performed by the adaptive engine.
    pub node_evals: u64,
    /// Node evaluations skipped because the node had converged at a lower
    /// rung of the same point evaluation.
    pub node_reuses: u64,
    /// Node evaluations skipped because a value converged during an earlier
    /// candidate/iteration/target applied (the cross-expression store).
    pub node_seeds: u64,
    /// Expressions evaluated through a depth-balanced tree.
    pub balanced: usize,
    /// Balanced point evaluations that fell back to the original tree.
    pub fallbacks: usize,
    /// Wall-clock spent inside Rival sweeps (summed across concurrent
    /// sweeps, so this can exceed elapsed time on multi-core).
    pub eval_time: Duration,
}

impl TruthStats {
    /// Node evaluations avoided by convergence tracking and the
    /// cross-expression store.
    pub fn evals_saved(&self) -> u64 {
        self.node_reuses + self.node_seeds
    }

    /// The counters accumulated since an earlier snapshot of the same cache.
    #[must_use]
    pub fn since(&self, earlier: &TruthStats) -> TruthStats {
        TruthStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            node_evals: self.node_evals - earlier.node_evals,
            node_reuses: self.node_reuses - earlier.node_reuses,
            node_seeds: self.node_seeds - earlier.node_seeds,
            balanced: self.balanced - earlier.balanced,
            fallbacks: self.fallbacks - earlier.fallbacks,
            eval_time: self.eval_time.saturating_sub(earlier.eval_time),
        }
    }

    /// Sums this and another stats record field-wise (the inverse of
    /// [`since`](TruthStats::since); used for corpus-wide aggregation).
    #[must_use]
    pub fn merged(&self, other: &TruthStats) -> TruthStats {
        TruthStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            node_evals: self.node_evals + other.node_evals,
            node_reuses: self.node_reuses + other.node_reuses,
            node_seeds: self.node_seeds + other.node_seeds,
            balanced: self.balanced + other.balanced,
            fallbacks: self.fallbacks + other.fallbacks,
            eval_time: self.eval_time + other.eval_time,
        }
    }
}

/// A memo of Rival ground truths over **one fixed point set**, keyed by
/// `(real expression, output type)`.
///
/// The local-error heuristic ground-truths the same real subexpressions for
/// every candidate of every improve iteration — and, under a
/// [`Session`](crate::session::Session), for every *target* compiled from one
/// preparation (the desugared subexpressions of different targets largely
/// coincide as real expressions). Ground truth is target-independent, so one
/// cache per prepared benchmark serves them all; entries are computed in
/// parallel on first request and shared (`Arc`) afterwards.
///
/// The cache owns its point columns: it can only ever be asked about the
/// point set it was built for, so a memoized answer is always the answer the
/// uncached evaluation would have produced — bit for bit.
///
/// With the default [`TruthEngine::Adaptive`] engine, a miss additionally
/// consults (and feeds) a store of *converged subexpression values*: a node
/// whose enclosure collapsed to an exact point during any earlier sweep is
/// never re-derived, even inside a different candidate expression. The reuse
/// rule is restricted to cases where the substitution is provably
/// bit-identical to uniform evaluation (see [`rival::adaptive`]).
#[derive(Clone)]
pub struct GroundTruthCache {
    inner: Arc<GroundTruthCacheInner>,
}

/// One memo slot: the first requester initializes it; concurrent requesters
/// for the same key block on the `OnceLock` instead of duplicating the sweep.
type TruthCell = Arc<std::sync::OnceLock<Arc<Vec<GroundTruth>>>>;

/// Memo table, keyed by expression first so the (overwhelmingly common) hit
/// path looks up with a borrowed `&Expr` — no AST clone per request.
type TruthMemo = HashMap<fpcore::Expr, HashMap<FpType, TruthCell>>;

/// Minimum tree depth before a cache miss evaluates a balanced clone of the
/// expression instead of the original (shallow trees gain nothing, and the
/// threshold keeps the rewrite off the typical corpus expression).
const BALANCE_MIN_DEPTH: usize = 9;

struct GroundTruthCacheInner {
    /// Same precision ladder the uncached local-error path used, so cached
    /// results (including which points are `Unsamplable`) are bit-identical.
    evaluator: Evaluator,
    engine: TruthEngine,
    vars: Vec<Symbol>,
    points: Columns,
    memo: Mutex<TruthMemo>,
    /// Converged subexpression values, keyed by subtree: for each cached
    /// point, the first ladder precision at which the node collapsed to an
    /// exact value, and that value. Shared across candidate expressions.
    exact: Mutex<HashMap<fpcore::Expr, ExactRow>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    node_evals: AtomicU64,
    node_reuses: AtomicU64,
    node_seeds: AtomicU64,
    balanced: AtomicUsize,
    fallbacks: AtomicUsize,
    eval_nanos: AtomicU64,
}

impl GroundTruthCache {
    /// A cache over an explicit point set, using the default
    /// ([`TruthEngine::Adaptive`]) engine.
    pub fn new(vars: Vec<Symbol>, points: Columns) -> GroundTruthCache {
        GroundTruthCache::with_engine(vars, points, TruthEngine::default())
    }

    /// A cache over an explicit point set with an explicit evaluation engine
    /// (the uniform engine is kept for reference measurements and
    /// differential testing).
    pub fn with_engine(
        vars: Vec<Symbol>,
        points: Columns,
        engine: TruthEngine,
    ) -> GroundTruthCache {
        GroundTruthCache {
            inner: Arc::new(GroundTruthCacheInner {
                evaluator: Evaluator::with_precisions(vec![96, 192, 384]),
                engine,
                vars,
                points,
                memo: Mutex::new(HashMap::new()),
                exact: Mutex::new(HashMap::new()),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
                node_evals: AtomicU64::new(0),
                node_reuses: AtomicU64::new(0),
                node_seeds: AtomicU64::new(0),
                balanced: AtomicUsize::new(0),
                fallbacks: AtomicUsize::new(0),
                eval_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// A cache over the training points of a sample set (what the improve
    /// loop's heuristics evaluate on).
    pub fn for_training(samples: &SampleSet) -> GroundTruthCache {
        GroundTruthCache::for_training_with(samples, TruthEngine::default())
    }

    /// Like [`GroundTruthCache::for_training`] with an explicit engine.
    pub fn for_training_with(samples: &SampleSet, engine: TruthEngine) -> GroundTruthCache {
        GroundTruthCache::with_engine(samples.vars.clone(), samples.train.clone(), engine)
    }

    /// The point columns this cache answers for.
    pub fn points(&self) -> &Columns {
        &self.inner.points
    }

    /// The engine used on cache misses.
    pub fn engine(&self) -> TruthEngine {
        self.inner.engine
    }

    /// Ground truth of `expr` in representation `ty` at every cached point, in
    /// point order. Computed (in parallel) on the first request for this
    /// `(expr, ty)`; shared on every later one. A request that races the first
    /// computation blocks until it is ready rather than repeating the sweep.
    pub fn ground_truths(&self, expr: &fpcore::Expr, ty: FpType) -> Arc<Vec<GroundTruth>> {
        // Reserve (or find) the slot under the lock — cloning the expression
        // only when inserting a brand-new key — then compute outside it so
        // distinct expressions evaluate concurrently.
        let cell: TruthCell = {
            // A poisoned memo only means some writer panicked (e.g. an
            // injected fault); completed cells are still valid, so recover.
            let mut memo = self
                .inner
                .memo
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match memo.get(expr).and_then(|per_ty| per_ty.get(&ty)) {
                Some(cell) => Arc::clone(cell),
                None => {
                    let cell = TruthCell::default();
                    memo.entry(expr.clone())
                        .or_default()
                        .insert(ty, Arc::clone(&cell));
                    cell
                }
            }
        };
        let mut computed = false;
        let inner = &*self.inner;
        let truths = cell.get_or_init(|| {
            computed = true;
            let start = std::time::Instant::now();
            let result = match inner.engine {
                TruthEngine::Uniform => self.sweep_uniform(expr, ty),
                TruthEngine::Adaptive => self.sweep_adaptive(expr, ty),
            };
            #[allow(clippy::cast_possible_truncation)]
            inner
                .eval_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            Arc::new(result)
        });
        if computed {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(truths)
    }

    /// The classic whole-expression precision-escalation sweep.
    fn sweep_uniform(&self, expr: &fpcore::Expr, ty: FpType) -> Vec<GroundTruth> {
        let inner = &*self.inner;
        par::par_map_range(inner.points.len(), |i| {
            inner.evaluator.eval(expr, &self.env_at(i), ty)
        })
    }

    /// The mixed-precision sweep: per-node convergence tracking, seeded from
    /// (and harvesting into) the cross-expression store of converged
    /// subexpression values, over a depth-balanced tree when the expression
    /// is deep enough to profit.
    ///
    /// Bit identity with [`GroundTruthCache::sweep_uniform`]: node reuse and
    /// seeding are restricted to provably precision-independent values (see
    /// [`rival::adaptive`]), and a balanced evaluation is only trusted when
    /// it produces a definite [`GroundTruth::Value`] — `Nan`/`Unsamplable`
    /// classifications always come from the original tree.
    fn sweep_adaptive(&self, expr: &fpcore::Expr, ty: FpType) -> Vec<GroundTruth> {
        let inner = &*self.inner;
        let balanced = balance_if_deep(expr, BALANCE_MIN_DEPTH);
        if balanced.is_some() {
            inner.balanced.fetch_add(1, Ordering::Relaxed);
        }
        let eval_expr = balanced.as_ref().unwrap_or(expr);
        let index = NodeIndex::build(eval_expr);
        // Snapshot the store rows for every non-trivial node up front; the
        // sweep must not hold the lock. Rows are indexed by node id.
        let seeds: Vec<Option<ExactRow>> = {
            // Stored rows are only ever written with already-verified exact
            // values, so recovering from a poisoned lock is sound.
            let store = self
                .inner
                .exact
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (0..index.len())
                .map(|id| match index.node(id) {
                    fpcore::Expr::Num(_) | fpcore::Expr::Var(_) => None,
                    node => store.get(node).cloned(),
                })
                .collect()
        };
        let outcomes = par::par_map_range(inner.points.len(), |i| {
            let env = self.env_at(i);
            let outcome = inner.evaluator.eval_adaptive(&index, &env, ty, &seeds, i);
            // A balanced tree converging to a value is the same correctly
            // rounded value the original converges to (the rewrite is
            // real-equivalent); anything else is decided by the original.
            let fell_back = balanced.is_some() && !matches!(outcome.truth, GroundTruth::Value(_));
            let truth = if fell_back {
                inner.evaluator.eval(expr, &env, ty)
            } else {
                outcome.truth
            };
            (truth, outcome.exact, outcome.stats, fell_back)
        });
        let mut truths = Vec::with_capacity(outcomes.len());
        let mut store = self
            .inner
            .exact
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, (truth, exact, stats, fell_back)) in outcomes.into_iter().enumerate() {
            truths.push(truth);
            inner
                .node_evals
                .fetch_add(stats.node_evals, Ordering::Relaxed);
            inner
                .node_reuses
                .fetch_add(stats.node_reuses, Ordering::Relaxed);
            inner
                .node_seeds
                .fetch_add(stats.node_seeds, Ordering::Relaxed);
            if fell_back {
                inner.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            for (id, prec, value) in exact {
                let row = store
                    .entry(index.node(id).clone())
                    .or_insert_with(|| vec![None; inner.points.len()]);
                // Keep the earliest-converging entry (usable at more rungs);
                // the values are necessarily equal.
                if row[i].as_ref().is_none_or(|(p, _)| *p > prec) {
                    row[i] = Some((prec, value));
                }
            }
        }
        truths
    }

    fn env_at(&self, i: usize) -> Vec<(Symbol, f64)> {
        self.inner
            .vars
            .iter()
            .enumerate()
            .map(|(v, sym)| (*sym, self.inner.points.value(i, v)))
            .collect()
    }

    /// `(hits, misses)` so far — misses are actual Rival evaluations.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }

    /// Full work counters, including the adaptive engine's node-level
    /// savings and total in-sweep wall-clock.
    pub fn truth_stats(&self) -> TruthStats {
        let inner = &*self.inner;
        TruthStats {
            hits: inner.hits.load(Ordering::Relaxed),
            misses: inner.misses.load(Ordering::Relaxed),
            node_evals: inner.node_evals.load(Ordering::Relaxed),
            node_reuses: inner.node_reuses.load(Ordering::Relaxed),
            node_seeds: inner.node_seeds.load(Ordering::Relaxed),
            balanced: inner.balanced.load(Ordering::Relaxed),
            fallbacks: inner.fallbacks.load(Ordering::Relaxed),
            eval_time: Duration::from_nanos(inner.eval_nanos.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for GroundTruthCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("GroundTruthCache")
            .field("points", &self.inner.points.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fpcore::parse_fpcore;

    #[test]
    fn ground_truth_cache_memoizes_and_matches_direct_evaluation() {
        let core =
            parse_fpcore("(FPCore (x) :pre (and (> x 0.5) (< x 50)) (sqrt (+ x 1)))").unwrap();
        let samples = Sampler::new(21).sample(&core, 8, 2).unwrap();
        let cache = GroundTruthCache::for_training(&samples);
        let expr = fpcore::parse_expr("(sqrt (+ x 1))").unwrap();
        let first = cache.ground_truths(&expr, FpType::Binary64);
        let again = cache.ground_truths(&expr, FpType::Binary64);
        assert!(Arc::ptr_eq(&first, &again), "second request must be a hit");
        assert_eq!(cache.stats(), (1, 1));
        // The cached values match an independent evaluator with the same
        // precision ladder.
        let evaluator = Evaluator::with_precisions(vec![96, 192, 384]);
        for (i, truth) in first.iter().enumerate() {
            let env = vec![(Symbol::new("x"), samples.train.value(i, 0))];
            assert_eq!(*truth, evaluator.eval(&expr, &env, FpType::Binary64));
        }
        // A different output type is a distinct entry.
        let narrow = cache.ground_truths(&expr, FpType::Binary32);
        assert_eq!(narrow.len(), samples.train.len());
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn adaptive_engine_matches_uniform_engine_bit_for_bit() {
        let core = parse_fpcore(
            "(FPCore (x y) :pre (and (> x 1) (< x 1e6) (> y 0) (< y 1)) \
             (- (sqrt (+ x 1)) (sqrt x)))",
        )
        .unwrap();
        let samples = Sampler::new(33).sample(&core, 24, 4).unwrap();
        let uniform = GroundTruthCache::for_training_with(&samples, TruthEngine::Uniform);
        let adaptive = GroundTruthCache::for_training_with(&samples, TruthEngine::Adaptive);
        for src in [
            "(- (sqrt (+ x 1)) (sqrt x))",
            "(/ 1 (+ (sqrt (+ x 1)) (sqrt x)))",
            "(* y (- (sqrt (+ x 1)) (sqrt x)))",
            "(+ (+ (+ (+ x y) (* x y)) (/ x y)) (- x y))",
            "(exp (- (log x) (log (+ x 1))))",
            "(if (< x y) (/ x y) (/ y x))",
        ] {
            let expr = fpcore::parse_expr(src).unwrap();
            assert_eq!(
                *uniform.ground_truths(&expr, FpType::Binary64),
                *adaptive.ground_truths(&expr, FpType::Binary64),
                "engines disagree on {src}"
            );
        }
        let stats = adaptive.truth_stats();
        assert!(
            stats.evals_saved() > 0,
            "the adaptive engine should have reused work: {stats:?}"
        );
        assert!(
            stats.node_seeds > 0,
            "shared subtrees across candidates should have seeded: {stats:?}"
        );
    }

    #[test]
    fn deep_chains_balance_and_still_match_uniform() {
        let core = parse_fpcore("(FPCore (x) :pre (and (> x 0.1) (< x 10)) (+ x 1))").unwrap();
        let samples = Sampler::new(5).sample(&core, 12, 2).unwrap();
        let uniform = GroundTruthCache::for_training_with(&samples, TruthEngine::Uniform);
        let adaptive = GroundTruthCache::for_training_with(&samples, TruthEngine::Adaptive);
        // A 12-term alternating chain: depth 13 triggers the balancer.
        let mut src = "x".to_string();
        for i in 0..12 {
            src = if i % 2 == 0 {
                format!("(+ {src} (* x x))")
            } else {
                format!("(- {src} (/ x 3))")
            };
        }
        let expr = fpcore::parse_expr(&src).unwrap();
        assert_eq!(
            *uniform.ground_truths(&expr, FpType::Binary64),
            *adaptive.ground_truths(&expr, FpType::Binary64)
        );
        let stats = adaptive.truth_stats();
        assert_eq!(stats.balanced, 1, "the deep chain must have balanced");
    }

    #[test]
    fn concurrent_cache_requests_return_identical_results() {
        let core = parse_fpcore("(FPCore (x) :pre (and (> x 0) (< x 100)) (sqrt x))").unwrap();
        let samples = Sampler::new(9).sample(&core, 16, 2).unwrap();
        let cache = GroundTruthCache::for_training(&samples);
        let exprs: Vec<fpcore::Expr> = [
            "(sqrt x)",
            "(/ x (sqrt x))",
            "(exp (* 0.5 (log x)))",
            "(* (sqrt x) 1)",
        ]
        .iter()
        .map(|s| fpcore::parse_expr(s).unwrap())
        .collect();
        // Hammer the same cache from many threads, every thread asking for
        // every expression; all answers for one expression must be the same
        // Arc (computed once) and equal to a fresh reference cache's.
        let results: Vec<Vec<Arc<Vec<GroundTruth>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let cache = cache.clone();
                    let exprs = &exprs;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        // Stagger request order per thread.
                        for i in 0..exprs.len() {
                            let e = &exprs[(i + t) % exprs.len()];
                            out.push(cache.ground_truths(e, FpType::Binary64));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let reference = GroundTruthCache::for_training(&samples);
        for per_thread in &results {
            for truths in per_thread {
                let matching = exprs
                    .iter()
                    .find(|e| *reference.ground_truths(e, FpType::Binary64) == **truths);
                assert!(matching.is_some(), "a concurrent result matched no expr");
            }
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, exprs.len(), "each expression swept exactly once");
        assert_eq!(hits + misses, 8 * exprs.len());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let core = parse_fpcore("(FPCore (x) (+ x 1))").unwrap();
        let a = Sampler::new(7).sample(&core, 8, 4).unwrap();
        let b = Sampler::new(7).sample(&core, 8, 4).unwrap();
        let c = Sampler::new(8).sample(&core, 8, 4).unwrap();
        assert_eq!(a.train, b.train);
        assert_ne!(a.train, c.train);
        assert_eq!(a.train_len(), 8);
        assert_eq!(a.test_len(), 4);
    }

    #[test]
    fn repeated_sampling_draws_fresh_points() {
        let core = parse_fpcore("(FPCore (x) (+ x 1))").unwrap();
        let mut sampler = Sampler::new(7);
        let a = sampler.sample(&core, 8, 4).unwrap();
        let b = sampler.sample(&core, 8, 4).unwrap();
        assert_ne!(
            a.train, b.train,
            "a reused sampler must not silently repeat its point set"
        );
        // A fresh sampler with the same seed reproduces the first set.
        let c = Sampler::new(7).sample(&core, 8, 4).unwrap();
        assert_eq!(a.train, c.train);
    }

    #[test]
    fn sampling_is_identical_across_thread_counts() {
        let _guard = crate::par::test_lock();
        let core = parse_fpcore("(FPCore (x y) :pre (> x y) (- (sqrt x) (sqrt y)))").unwrap();
        crate::par::set_thread_count(1);
        let serial = Sampler::new(13).sample(&core, 16, 8).unwrap();
        for threads in [2, 5] {
            crate::par::set_thread_count(threads);
            let parallel = Sampler::new(13).sample(&core, 16, 8).unwrap();
            assert_eq!(serial.train, parallel.train, "{threads} threads");
            assert_eq!(
                serial.train_truth, parallel.train_truth,
                "{threads} threads"
            );
            assert_eq!(serial.test, parallel.test, "{threads} threads");
            assert_eq!(serial.test_truth, parallel.test_truth, "{threads} threads");
        }
        crate::par::set_thread_count(0);
    }

    #[test]
    fn preconditions_are_respected() {
        let core = parse_fpcore("(FPCore (x) :pre (and (> x 0) (< x 1)) (sqrt x))").unwrap();
        let set = Sampler::new(1).sample(&core, 12, 4).unwrap();
        for point in set.train.rows().chain(set.test.rows()) {
            assert!(
                point[0] > 0.0 && point[0] < 1.0,
                "point {point:?} violates the precondition"
            );
        }
    }

    #[test]
    fn truths_match_ground_truth() {
        let core = parse_fpcore("(FPCore (x) (* x x))").unwrap();
        let set = Sampler::new(3).sample(&core, 6, 2).unwrap();
        for (point, truth) in set.train.rows().zip(&set.train_truth) {
            // x*x rounded once: ground truth equals the double product here.
            assert_eq!(*truth, point[0] * point[0]);
        }
    }

    #[test]
    fn nan_regions_are_rejected() {
        // sqrt of a negative number is NaN; all sampled points must be >= 0.
        let core = parse_fpcore("(FPCore (x) (sqrt x))").unwrap();
        let set = Sampler::new(11).sample(&core, 10, 2).unwrap();
        for point in set.train.rows().chain(set.test.rows()) {
            assert!(point[0] >= 0.0);
        }
    }

    #[test]
    fn impossible_preconditions_error_out() {
        // `x < x - 1` is decidably false everywhere: every attempt fails the
        // precondition, which the taxonomy reports as an empty domain.
        let core = parse_fpcore("(FPCore (x) :pre (< x (- x 1)) x)").unwrap();
        let mut sampler = Sampler::new(5);
        assert!(matches!(
            sampler.sample(&core, 8, 4),
            Err(SampleError::EmptyDomain { .. })
        ));
    }

    #[test]
    fn binary32_cores_sample_binary32_values() {
        let core = parse_fpcore("(FPCore ((! :precision binary32 x)) :precision binary32 (+ x 1))")
            .unwrap();
        let set = Sampler::new(2).sample(&core, 6, 2).unwrap();
        for point in set.train.rows() {
            assert_eq!(point[0], point[0] as f32 as f64, "values must be binary32");
        }
        assert_eq!(set.output_type, FpType::Binary32);
    }
}
