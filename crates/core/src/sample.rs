//! Input sampling (shared with Herbie; paper Section 2).
//!
//! Chassis samples training and test points from the expression's input domain:
//! values are drawn uniformly over the representable floats (plus a share of
//! moderate-magnitude values), filtered by the FPCore precondition, and kept only
//! when the ground-truth evaluator can produce a finite correctly rounded result
//! (points whose true value is NaN or undecidable are discarded, as in Herbie).

use crate::par;
use crate::rng::Rng;
use fpcore::{FPCore, FpType, Symbol};
use rival::{Evaluator, GroundTruth};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use targets::Columns;

/// A set of sampled points with their ground-truth results.
///
/// Points are stored columnar ([`Columns`]): one contiguous `f64` column per
/// variable, the layout the block evaluator consumes directly — the sampled
/// batch is transposed once here and never re-shaped (or re-allocated
/// per point) by any downstream consumer.
#[derive(Clone, Debug)]
pub struct SampleSet {
    /// Variable order used by the point columns.
    pub vars: Vec<Symbol>,
    /// Output representation used for ground truth.
    pub output_type: FpType,
    /// Training points (used to guide the search), one column per variable.
    pub train: Columns,
    /// Correctly rounded value of the input expression at each training point.
    pub train_truth: Vec<f64>,
    /// Held-out test points (used for reporting), one column per variable.
    pub test: Columns,
    /// Correctly rounded value at each test point.
    pub test_truth: Vec<f64>,
}

impl SampleSet {
    /// Number of training points.
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// Number of test points.
    pub fn test_len(&self) -> usize {
        self.test.len()
    }
}

/// Why sampling failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SampleError {
    /// Too few valid points were found (precondition too tight, or the expression
    /// is NaN almost everywhere).
    NotEnoughPoints {
        /// How many valid points were found.
        found: usize,
        /// How many were requested.
        requested: usize,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::NotEnoughPoints { found, requested } => write!(
                f,
                "could not sample enough valid points ({found} of {requested})"
            ),
        }
    }
}

impl std::error::Error for SampleError {}

/// Samples valid input points for an FPCore benchmark.
///
/// Each candidate attempt draws from its own RNG stream derived from
/// `(seed, attempt index)`, so the accepted point set depends only on the seed —
/// not on how attempts are batched across worker threads.
#[derive(Clone, Debug)]
pub struct Sampler {
    seed: u64,
    /// First unused attempt stream; advanced by every `sample` call so repeated
    /// calls on one sampler draw fresh points (matching the pre-parallel
    /// behavior where the RNG advanced between calls).
    next_stream: u64,
    evaluator: Evaluator,
}

impl Sampler {
    /// A sampler with the given RNG seed (results are deterministic per seed).
    pub fn new(seed: u64) -> Sampler {
        Sampler {
            seed,
            next_stream: 0,
            evaluator: Evaluator::with_precisions(vec![96, 192, 384, 768]),
        }
    }

    /// Draws one candidate value for a variable: a quarter of the time a uniformly
    /// random finite float (Herbie-style "sample the representation"), otherwise a
    /// moderate-magnitude value where most benchmark preconditions are satisfied
    /// (benchmark domains are overwhelmingly positive and within a few orders of
    /// magnitude of 1, so biasing the proposal distribution there keeps rejection
    /// sampling cheap without changing which points are *accepted*).
    fn draw(rng: &mut Rng, ty: FpType) -> f64 {
        let value = match rng.below(4) {
            0 => loop {
                // Uniform over bit patterns, rejecting NaN and infinity.
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    break v;
                }
            },
            1 => rng.range_f64(-1e3, 1e3),
            _ => {
                // Log-uniform magnitude in [1e-6, 1e6), mostly positive.
                let exp = rng.range_f64(-6.0, 6.0);
                let sign = if rng.next_f64() < 0.75 { 1.0 } else { -1.0 };
                sign * 10f64.powf(exp)
            }
        };
        match ty {
            FpType::Binary32 => value as f32 as f64,
            _ => value,
        }
    }

    /// Draws, filters, and ground-truths one attempt from its own RNG stream.
    fn attempt(
        &self,
        core: &FPCore,
        vars: &[Symbol],
        types: &[FpType],
        index: u64,
    ) -> Option<(Vec<f64>, f64)> {
        let mut rng = Rng::for_stream(self.seed, index);
        let point: Vec<f64> = types.iter().map(|ty| Self::draw(&mut rng, *ty)).collect();
        let env: Vec<(Symbol, f64)> = vars.iter().copied().zip(point.iter().copied()).collect();
        if let Some(pre) = &core.pre {
            match self.evaluator.eval_bool(pre, &env) {
                Some(true) => {}
                _ => return None,
            }
        }
        match self.evaluator.eval(&core.body, &env, core.precision) {
            GroundTruth::Value(v) if v.is_finite() => Some((point, v)),
            _ => None,
        }
    }

    /// Samples `train + test` valid points for `core`.
    ///
    /// Attempts are evaluated in parallel batches (ground-truthing a candidate
    /// point is the expensive step), then accepted in attempt order until the
    /// request is filled, which keeps the result independent of thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SampleError::NotEnoughPoints`] when fewer than a quarter of the
    /// requested points could be found within the attempt budget.
    pub fn sample(
        &mut self,
        core: &FPCore,
        train: usize,
        test: usize,
    ) -> Result<SampleSet, SampleError> {
        let vars = core.arg_names();
        let types: Vec<FpType> = core.args.iter().map(|(_, t)| *t).collect();
        let requested = train + test;
        let mut points: Vec<Vec<f64>> = Vec::with_capacity(requested);
        let mut truths: Vec<f64> = Vec::with_capacity(requested);
        let max_attempts = requested * 400 + 2_000;
        // Ground-truthing a candidate is the expensive step, so overshoot is
        // waste: start a little above the request (acceptance is often high)
        // and resize each batch from the observed acceptance rate. Because
        // candidates are accepted in attempt order, batching cannot change
        // *which* points are accepted — only how many attempts are evaluated.
        let mut batch_size = (requested + requested / 2).clamp(8, 1024);
        let base_stream = self.next_stream;
        let mut attempts = 0usize;
        while points.len() < requested && attempts < max_attempts {
            let batch = batch_size.min(max_attempts - attempts);
            let candidates = par::par_map_range(batch, |i| {
                self.attempt(core, &vars, &types, base_stream + (attempts + i) as u64)
            });
            for (point, truth) in candidates.into_iter().flatten() {
                if points.len() < requested {
                    points.push(point);
                    truths.push(truth);
                }
            }
            attempts += batch;
            let remaining = requested - points.len();
            if remaining > 0 {
                let rate = points.len() as f64 / attempts as f64;
                batch_size = if rate > 0.0 {
                    ((remaining as f64 / rate) * 1.25).ceil() as usize
                } else {
                    batch_size.saturating_mul(2)
                }
                .clamp(8, 1024);
            }
        }
        self.next_stream = base_stream + attempts as u64;
        if points.len() < (requested / 4).max(2) {
            return Err(SampleError::NotEnoughPoints {
                found: points.len(),
                requested,
            });
        }
        // Split into train / test, keeping the requested proportions when
        // short, and transpose the accepted rows into the columnar layout the
        // evaluation pipeline consumes.
        let train_len = ((points.len() * train) / requested).max(1);
        let test_truths = truths.split_off(train_len.min(truths.len()));
        let (train_points, test_points) =
            Columns::from_rows(vars.len(), &points).split_at(train_len);
        Ok(SampleSet {
            vars,
            output_type: core.precision,
            train: train_points,
            train_truth: truths,
            test: test_points,
            test_truth: test_truths,
        })
    }

    /// Recomputes ground truth for an arbitrary real expression over existing
    /// points (used by the accuracy evaluation of candidate programs whose
    /// desugaring differs from the original only by real-equivalent rewrites, and
    /// by the local-error heuristic for subexpressions).
    pub fn ground_truths(
        &self,
        expr: &fpcore::Expr,
        vars: &[Symbol],
        points: &Columns,
        ty: FpType,
    ) -> Vec<GroundTruth> {
        par::par_map_range(points.len(), |i| {
            let env: Vec<(Symbol, f64)> = vars
                .iter()
                .enumerate()
                .map(|(v, sym)| (*sym, points.value(i, v)))
                .collect();
            self.evaluator.eval(expr, &env, ty)
        })
    }
}

/// A memo of Rival ground truths over **one fixed point set**, keyed by
/// `(real expression, output type)`.
///
/// The local-error heuristic ground-truths the same real subexpressions for
/// every candidate of every improve iteration — and, under a
/// [`Session`](crate::session::Session), for every *target* compiled from one
/// preparation (the desugared subexpressions of different targets largely
/// coincide as real expressions). Ground truth is target-independent, so one
/// cache per prepared benchmark serves them all; entries are computed in
/// parallel on first request and shared (`Arc`) afterwards.
///
/// The cache owns its point columns: it can only ever be asked about the
/// point set it was built for, so a memoized answer is always the answer the
/// uncached evaluation would have produced — bit for bit.
#[derive(Clone)]
pub struct GroundTruthCache {
    inner: Arc<GroundTruthCacheInner>,
}

/// One memo slot: the first requester initializes it; concurrent requesters
/// for the same key block on the `OnceLock` instead of duplicating the sweep.
type TruthCell = Arc<std::sync::OnceLock<Arc<Vec<GroundTruth>>>>;

/// Memo table, keyed by expression first so the (overwhelmingly common) hit
/// path looks up with a borrowed `&Expr` — no AST clone per request.
type TruthMemo = HashMap<fpcore::Expr, HashMap<FpType, TruthCell>>;

struct GroundTruthCacheInner {
    /// Same precision ladder the uncached local-error path used, so cached
    /// results (including which points are `Unsamplable`) are bit-identical.
    evaluator: Evaluator,
    vars: Vec<Symbol>,
    points: Columns,
    memo: Mutex<TruthMemo>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl GroundTruthCache {
    /// A cache over an explicit point set.
    pub fn new(vars: Vec<Symbol>, points: Columns) -> GroundTruthCache {
        GroundTruthCache {
            inner: Arc::new(GroundTruthCacheInner {
                evaluator: Evaluator::with_precisions(vec![96, 192, 384]),
                vars,
                points,
                memo: Mutex::new(HashMap::new()),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
            }),
        }
    }

    /// A cache over the training points of a sample set (what the improve
    /// loop's heuristics evaluate on).
    pub fn for_training(samples: &SampleSet) -> GroundTruthCache {
        GroundTruthCache::new(samples.vars.clone(), samples.train.clone())
    }

    /// The point columns this cache answers for.
    pub fn points(&self) -> &Columns {
        &self.inner.points
    }

    /// Ground truth of `expr` in representation `ty` at every cached point, in
    /// point order. Computed (in parallel) on the first request for this
    /// `(expr, ty)`; shared on every later one. A request that races the first
    /// computation blocks until it is ready rather than repeating the sweep.
    pub fn ground_truths(&self, expr: &fpcore::Expr, ty: FpType) -> Arc<Vec<GroundTruth>> {
        // Reserve (or find) the slot under the lock — cloning the expression
        // only when inserting a brand-new key — then compute outside it so
        // distinct expressions evaluate concurrently.
        let cell: TruthCell = {
            let mut memo = self.inner.memo.lock().expect("ground-truth cache poisoned");
            match memo.get(expr).and_then(|per_ty| per_ty.get(&ty)) {
                Some(cell) => Arc::clone(cell),
                None => {
                    let cell = TruthCell::default();
                    memo.entry(expr.clone())
                        .or_default()
                        .insert(ty, Arc::clone(&cell));
                    cell
                }
            }
        };
        let mut computed = false;
        let inner = &*self.inner;
        let truths = cell.get_or_init(|| {
            computed = true;
            Arc::new(par::par_map_range(inner.points.len(), |i| {
                let env: Vec<(Symbol, f64)> = inner
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(v, sym)| (*sym, inner.points.value(i, v)))
                    .collect();
                inner.evaluator.eval(expr, &env, ty)
            }))
        });
        if computed {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(truths)
    }

    /// `(hits, misses)` so far — misses are actual Rival evaluations.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for GroundTruthCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("GroundTruthCache")
            .field("points", &self.inner.points.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_fpcore;

    #[test]
    fn ground_truth_cache_memoizes_and_matches_direct_evaluation() {
        let core =
            parse_fpcore("(FPCore (x) :pre (and (> x 0.5) (< x 50)) (sqrt (+ x 1)))").unwrap();
        let samples = Sampler::new(21).sample(&core, 8, 2).unwrap();
        let cache = GroundTruthCache::for_training(&samples);
        let expr = fpcore::parse_expr("(sqrt (+ x 1))").unwrap();
        let first = cache.ground_truths(&expr, FpType::Binary64);
        let again = cache.ground_truths(&expr, FpType::Binary64);
        assert!(Arc::ptr_eq(&first, &again), "second request must be a hit");
        assert_eq!(cache.stats(), (1, 1));
        // The cached values match an independent evaluator with the same
        // precision ladder.
        let evaluator = Evaluator::with_precisions(vec![96, 192, 384]);
        for (i, truth) in first.iter().enumerate() {
            let env = vec![(Symbol::new("x"), samples.train.value(i, 0))];
            assert_eq!(*truth, evaluator.eval(&expr, &env, FpType::Binary64));
        }
        // A different output type is a distinct entry.
        let narrow = cache.ground_truths(&expr, FpType::Binary32);
        assert_eq!(narrow.len(), samples.train.len());
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let core = parse_fpcore("(FPCore (x) (+ x 1))").unwrap();
        let a = Sampler::new(7).sample(&core, 8, 4).unwrap();
        let b = Sampler::new(7).sample(&core, 8, 4).unwrap();
        let c = Sampler::new(8).sample(&core, 8, 4).unwrap();
        assert_eq!(a.train, b.train);
        assert_ne!(a.train, c.train);
        assert_eq!(a.train_len(), 8);
        assert_eq!(a.test_len(), 4);
    }

    #[test]
    fn repeated_sampling_draws_fresh_points() {
        let core = parse_fpcore("(FPCore (x) (+ x 1))").unwrap();
        let mut sampler = Sampler::new(7);
        let a = sampler.sample(&core, 8, 4).unwrap();
        let b = sampler.sample(&core, 8, 4).unwrap();
        assert_ne!(
            a.train, b.train,
            "a reused sampler must not silently repeat its point set"
        );
        // A fresh sampler with the same seed reproduces the first set.
        let c = Sampler::new(7).sample(&core, 8, 4).unwrap();
        assert_eq!(a.train, c.train);
    }

    #[test]
    fn sampling_is_identical_across_thread_counts() {
        let _guard = crate::par::test_lock();
        let core = parse_fpcore("(FPCore (x y) :pre (> x y) (- (sqrt x) (sqrt y)))").unwrap();
        crate::par::set_thread_count(1);
        let serial = Sampler::new(13).sample(&core, 16, 8).unwrap();
        for threads in [2, 5] {
            crate::par::set_thread_count(threads);
            let parallel = Sampler::new(13).sample(&core, 16, 8).unwrap();
            assert_eq!(serial.train, parallel.train, "{threads} threads");
            assert_eq!(
                serial.train_truth, parallel.train_truth,
                "{threads} threads"
            );
            assert_eq!(serial.test, parallel.test, "{threads} threads");
            assert_eq!(serial.test_truth, parallel.test_truth, "{threads} threads");
        }
        crate::par::set_thread_count(0);
    }

    #[test]
    fn preconditions_are_respected() {
        let core = parse_fpcore("(FPCore (x) :pre (and (> x 0) (< x 1)) (sqrt x))").unwrap();
        let set = Sampler::new(1).sample(&core, 12, 4).unwrap();
        for point in set.train.rows().chain(set.test.rows()) {
            assert!(
                point[0] > 0.0 && point[0] < 1.0,
                "point {point:?} violates the precondition"
            );
        }
    }

    #[test]
    fn truths_match_ground_truth() {
        let core = parse_fpcore("(FPCore (x) (* x x))").unwrap();
        let set = Sampler::new(3).sample(&core, 6, 2).unwrap();
        for (point, truth) in set.train.rows().zip(&set.train_truth) {
            // x*x rounded once: ground truth equals the double product here.
            assert_eq!(*truth, point[0] * point[0]);
        }
    }

    #[test]
    fn nan_regions_are_rejected() {
        // sqrt of a negative number is NaN; all sampled points must be >= 0.
        let core = parse_fpcore("(FPCore (x) (sqrt x))").unwrap();
        let set = Sampler::new(11).sample(&core, 10, 2).unwrap();
        for point in set.train.rows().chain(set.test.rows()) {
            assert!(point[0] >= 0.0);
        }
    }

    #[test]
    fn impossible_preconditions_error_out() {
        let core = parse_fpcore("(FPCore (x) :pre (< x (- x 1)) x)").unwrap();
        let mut sampler = Sampler::new(5);
        assert!(matches!(
            sampler.sample(&core, 8, 4),
            Err(SampleError::NotEnoughPoints { .. })
        ));
    }

    #[test]
    fn binary32_cores_sample_binary32_values() {
        let core = parse_fpcore("(FPCore ((! :precision binary32 x)) :precision binary32 (+ x 1))")
            .unwrap();
        let set = Sampler::new(2).sample(&core, 6, 2).unwrap();
        for point in set.train.rows() {
            assert_eq!(point[0], point[0] as f32 as f64, "values must be binary32");
        }
        assert_eq!(set.output_type, FpType::Binary32);
    }
}
