//! A Clang-style baseline: a traditional, semantics-preserving compiler.
//!
//! Clang either preserves the source floating-point semantics bit-for-bit (which
//! forbids most algebraic rewriting) or, under `-ffast-math`, applies algebraic
//! transformations with no regard for accuracy. This module models both: direct
//! lowering to the C target, a small pipeline of semantics-preserving passes at
//! `-O1` and above, and the classic fast-math transformations (FMA contraction,
//! reciprocal strength reduction, reassociation) when requested.
//!
//! The passes operate on our interpreted cost model, so differences between
//! optimization levels are smaller than on real hardware; what matters for the
//! comparison (Figure 7) is the *shape*: Clang produces one program per
//! configuration with essentially fixed accuracy, while Chassis produces a whole
//! accuracy/cost frontier.

use crate::lower::{lower_fpcore, DirectLowering, LowerError};
use fpcore::{FPCore, FpType, RealOp};
use targets::{FloatExpr, Target};

/// Clang optimization levels (Figure 7 evaluates O0-O3, Os and Oz; Os/Oz behave
/// like O2 for straight-line numeric code, so they share a variant here).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Constant folding.
    O1,
    /// Constant folding plus IEEE-safe identity simplification (also models Os/Oz).
    O2,
    /// Same pipeline as O2 (vectorization has no analogue in our scalar model).
    O3,
}

impl OptLevel {
    /// All modelled levels.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        }
    }
}

/// A Clang configuration: optimization level plus fast-math.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClangConfig {
    /// Optimization level.
    pub level: OptLevel,
    /// Whether `-ffast-math` is enabled.
    pub fast_math: bool,
}

impl ClangConfig {
    /// The twelve configurations evaluated in the paper (six levels × fast-math),
    /// collapsed onto the four modelled levels.
    pub fn all() -> Vec<ClangConfig> {
        let mut out = Vec::new();
        for level in OptLevel::ALL {
            for fast_math in [false, true] {
                out.push(ClangConfig { level, fast_math });
            }
        }
        out
    }

    /// Display name, e.g. `-O2 -ffast-math`.
    pub fn name(&self) -> String {
        if self.fast_math {
            format!("{} -ffast-math", self.level.name())
        } else {
            self.level.name().to_owned()
        }
    }
}

/// Compiles an FPCore with the Clang-style pipeline on the given (C-like) target.
pub fn compile_clang(
    core: &FPCore,
    target: &Target,
    config: ClangConfig,
) -> Result<FloatExpr, LowerError> {
    let mut program = lower_fpcore(core, target)?;
    if config.level != OptLevel::O0 {
        program = constant_fold(target, &program);
    }
    if matches!(config.level, OptLevel::O2 | OptLevel::O3) {
        program = simplify_identities(target, &program);
    }
    if config.fast_math {
        program = fast_math(target, &program, core.precision);
        program = constant_fold(target, &program);
    }
    Ok(program)
}

fn rebuild(expr: &FloatExpr, f: &impl Fn(&FloatExpr) -> FloatExpr) -> FloatExpr {
    match expr {
        FloatExpr::Num(_, _) | FloatExpr::Var(_, _) => expr.clone(),
        FloatExpr::Op(id, args) => {
            let args = args.iter().map(f).collect();
            FloatExpr::Op(*id, args)
        }
        FloatExpr::Cmp(op, a, b) => FloatExpr::Cmp(*op, Box::new(f(a)), Box::new(f(b))),
        FloatExpr::If(c, t, e) => FloatExpr::If(Box::new(f(c)), Box::new(f(t)), Box::new(f(e))),
    }
}

/// Evaluates operators whose arguments are all literals (semantics-preserving:
/// the operator implementation itself is used).
fn constant_fold(target: &Target, expr: &FloatExpr) -> FloatExpr {
    let folded = rebuild(expr, &|e| constant_fold(target, e));
    if let FloatExpr::Op(id, args) = &folded {
        let literals: Option<Vec<f64>> = args
            .iter()
            .map(|a| match a {
                FloatExpr::Num(v, _) => Some(*v),
                _ => None,
            })
            .collect();
        if let Some(values) = literals {
            let op = target.operator(*id);
            return FloatExpr::literal(op.execute(&values), op.ret_type);
        }
    }
    folded
}

fn is_literal(expr: &FloatExpr, value: f64) -> bool {
    matches!(expr, FloatExpr::Num(v, _) if *v == value)
}

fn real_op_of(target: &Target, expr: &FloatExpr) -> Option<RealOp> {
    if let FloatExpr::Op(id, args) = expr {
        if let fpcore::Expr::Op(op, dargs) = &target.operator(*id).desugaring {
            if dargs.len() == args.len() {
                return Some(*op);
            }
        }
    }
    None
}

/// IEEE-safe identity simplifications Clang performs without fast-math:
/// `x * 1 → x`, `x / 1 → x` (exact), and double-negation removal.
fn simplify_identities(target: &Target, expr: &FloatExpr) -> FloatExpr {
    let simplified = rebuild(expr, &|e| simplify_identities(target, e));
    if let FloatExpr::Op(_, args) = &simplified {
        match real_op_of(target, &simplified) {
            Some(RealOp::Mul) if is_literal(&args[1], 1.0) => return args[0].clone(),
            Some(RealOp::Mul) if is_literal(&args[0], 1.0) => return args[1].clone(),
            Some(RealOp::Div) if is_literal(&args[1], 1.0) => return args[0].clone(),
            Some(RealOp::Neg) => {
                if let Some(RealOp::Neg) = real_op_of(target, &args[0]) {
                    if let FloatExpr::Op(_, inner) = &args[0] {
                        return inner[0].clone();
                    }
                }
            }
            _ => {}
        }
    }
    simplified
}

/// Fast-math transformations: FMA contraction, division by a constant turned into
/// multiplication by its reciprocal, and `x - x → 0`.
fn fast_math(target: &Target, expr: &FloatExpr, ty: FpType) -> FloatExpr {
    let lowering = DirectLowering::new(target);
    let transformed = rebuild(expr, &|e| fast_math(target, e, ty));
    if let FloatExpr::Op(_, args) = &transformed {
        match real_op_of(target, &transformed) {
            // a*b + c  →  fma(a, b, c)  (contraction changes rounding; allowed
            // only under fast-math / -ffp-contract).
            Some(RealOp::Add) => {
                if let Some(fma) = lowering.operator_for(RealOp::Fma, ty) {
                    for (product, addend) in [(&args[0], &args[1]), (&args[1], &args[0])] {
                        if real_op_of(target, product) == Some(RealOp::Mul) {
                            if let FloatExpr::Op(_, mul_args) = product {
                                return FloatExpr::Op(
                                    fma,
                                    vec![
                                        mul_args[0].clone(),
                                        mul_args[1].clone(),
                                        (*addend).clone(),
                                    ],
                                );
                            }
                        }
                    }
                }
            }
            // x / c  →  x * (1/c) for a literal c.
            Some(RealOp::Div) => {
                if let FloatExpr::Num(c, num_ty) = &args[1] {
                    if *c != 0.0 {
                        if let Some(mul) = lowering.operator_for(RealOp::Mul, ty) {
                            return FloatExpr::Op(
                                mul,
                                vec![args[0].clone(), FloatExpr::literal(1.0 / c, *num_ty)],
                            );
                        }
                    }
                }
            }
            // x - x → 0 (not IEEE-safe: wrong for NaN and infinities).
            Some(RealOp::Sub) if args[0] == args[1] => {
                return FloatExpr::literal(0.0, ty);
            }
            _ => {}
        }
    }
    transformed
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_fpcore;
    use targets::{builtin, program_cost};

    fn c99() -> Target {
        builtin::by_name("c99").unwrap()
    }

    #[test]
    fn twelve_configurations_exist() {
        assert_eq!(ClangConfig::all().len(), 8);
        assert!(ClangConfig::all()
            .iter()
            .any(|c| c.name() == "-O2 -ffast-math"));
    }

    #[test]
    fn o0_is_a_plain_lowering() {
        let core = parse_fpcore("(FPCore (x) (* (+ 1 2) x))").unwrap();
        let t = c99();
        let o0 = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O0,
                fast_math: false,
            },
        )
        .unwrap();
        let o1 = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O1,
                fast_math: false,
            },
        )
        .unwrap();
        // O1 folds 1+2; O0 does not.
        assert!(program_cost(&t, &o1) < program_cost(&t, &o0));
        assert_eq!(o0.desugar(&t), core.body);
    }

    #[test]
    fn o2_removes_multiplication_by_one() {
        let core = parse_fpcore("(FPCore (x) (* x 1))").unwrap();
        let t = c99();
        let o2 = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O2,
                fast_math: false,
            },
        )
        .unwrap();
        assert_eq!(
            o2,
            FloatExpr::Var(fpcore::Symbol::new("x"), FpType::Binary64)
        );
    }

    #[test]
    fn fast_math_contracts_fma_and_strength_reduces_division() {
        let t = c99();
        let core = parse_fpcore("(FPCore (a b c) (+ (* a b) c))").unwrap();
        let fused = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O2,
                fast_math: true,
            },
        )
        .unwrap();
        assert!(fused.render(&t).contains("fma.f64"));
        let strict = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O2,
                fast_math: false,
            },
        )
        .unwrap();
        assert!(
            !strict.render(&t).contains("fma.f64"),
            "contraction requires fast-math"
        );
        assert!(program_cost(&t, &fused) < program_cost(&t, &strict));

        let core = parse_fpcore("(FPCore (x) (/ x 8))").unwrap();
        let reduced = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O3,
                fast_math: true,
            },
        )
        .unwrap();
        assert!(reduced.render(&t).contains("*.f64"));
    }

    #[test]
    fn fast_math_changes_semantics_only_when_enabled() {
        // x - x is NaN for x = inf; fast-math folds it to 0.
        let t = c99();
        let core = parse_fpcore("(FPCore (x) (- x x))").unwrap();
        let strict = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O2,
                fast_math: false,
            },
        )
        .unwrap();
        let fast = compile_clang(
            &core,
            &t,
            ClangConfig {
                level: OptLevel::O2,
                fast_math: true,
            },
        )
        .unwrap();
        assert_ne!(strict, fast);
        assert!(matches!(fast, FloatExpr::Num(v, _) if v == 0.0));
    }
}
