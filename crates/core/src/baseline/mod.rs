//! The baselines Chassis is evaluated against (paper Section 6):
//!
//! * [`herbie`] — a Herbie-style *target-agnostic* numerical compiler: the same
//!   iterative loop run over the abstract Rival operator set with Herbie's
//!   simplistic 1-vs-100 cost model, whose output is then transcribed onto each
//!   concrete target (Section 6.3), and
//! * [`clang`] — a Clang-style *traditional* compiler: semantics-preserving
//!   direct lowering plus the classic optimization passes, with and without
//!   fast-math (Section 6.2).

pub mod clang;
pub mod herbie;

pub use clang::{compile_clang, ClangConfig, OptLevel};
pub use herbie::{herbie_target, transcribe, HerbieCompiler};
