//! A Herbie-style baseline: target-agnostic accuracy-first compilation.
//!
//! Herbie (Panchekha et al.) runs essentially the same iterative loop as Chassis
//! but knows nothing about the eventual target: its output programs use exactly
//! the abstract Rival operator set, and its cost model assigns 1 to arithmetic
//! and 100 to every other function call (paper Section 3.1). To compare against
//! it on a concrete target, Herbie's output is *transcribed*: unsupported
//! operators are desugared into simpler ones where possible, and programs that
//! still use unavailable operators are discarded (Section 6.3).

use crate::compiler::{CompilationResult, CompileError, Config};
use crate::lower::{desugar_unsupported, DirectLowering};
use crate::session::Session;
use fpcore::{FPCore, FpType, RealOp};
use targets::{FloatExpr, Operator, Target};

/// Builds the abstract target Herbie compiles to: every Rival real operator,
/// binary64 only, with Herbie's 1-vs-100 cost model.
pub fn herbie_target() -> Target {
    let mut target = Target::new(
        "herbie",
        "Target-agnostic Rival operator set with Herbie's 1 (arithmetic) / 100 (call) cost model",
    )
    .with_leaf_costs(1.0, 1.0)
    .with_cost_source("Herbie 1/100 model");
    for &op in RealOp::ALL {
        if op.is_predicate() {
            continue;
        }
        let cost = match op {
            RealOp::Add | RealOp::Sub | RealOp::Mul | RealOp::Div | RealOp::Neg | RealOp::Fabs => {
                1.0
            }
            _ => 100.0,
        };
        let args: Vec<FpType> = vec![FpType::Binary64; op.arity()];
        let desugaring = {
            let vars: Vec<String> = (0..op.arity()).map(|i| format!("a{i}")).collect();
            format!("({} {})", op.name(), vars.join(" "))
        };
        target.add_operator(Operator::emulated(
            &format!("{}.f64", op.name()),
            &args,
            FpType::Binary64,
            &desugaring,
            cost,
        ));
    }
    target
}

/// The Herbie-style compiler: Chassis' loop over the abstract target.
///
/// Runs on a private [`Session`], so repeated `compile` calls for the same
/// benchmark (the figure harness asks once per concrete target) sample and
/// ground-truth it only once.
#[derive(Debug)]
pub struct HerbieCompiler {
    target: Target,
    session: Session,
}

impl Default for HerbieCompiler {
    fn default() -> Self {
        HerbieCompiler::new(Config::default())
    }
}

impl HerbieCompiler {
    /// Creates the baseline compiler with the given search configuration.
    pub fn new(config: Config) -> HerbieCompiler {
        HerbieCompiler {
            target: herbie_target(),
            session: Session::new(config),
        }
    }

    /// The abstract target Herbie compiles to.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Compiles a benchmark target-agnostically.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from sampling or the search.
    pub fn compile(&self, core: &FPCore) -> Result<CompilationResult, CompileError> {
        self.session.prepare(core)?.compile(&self.target)
    }
}

/// Transcribes a Herbie output program onto a concrete target: the program is
/// desugared back to a real expression, unsupported operators are expanded into
/// simpler ones, and the result is lowered directly. Returns `None` when some
/// operator is fundamentally unavailable (such programs are discarded from the
/// comparison, biasing it toward Herbie, exactly as the paper does).
pub fn transcribe(
    program: &FloatExpr,
    herbie_target: &Target,
    concrete: &Target,
    output: FpType,
) -> Option<FloatExpr> {
    let real = program.desugar(herbie_target);
    let lowering = DirectLowering::new(concrete);
    let desugared = desugar_unsupported(&real, &lowering, output);
    lowering.lower(&desugared, output).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_fpcore;
    use targets::builtin;

    #[test]
    fn herbie_target_has_the_one_vs_hundred_cost_model() {
        let t = herbie_target();
        let add = t.operator(t.find_operator("+.f64").unwrap()).cost;
        let sin = t.operator(t.find_operator("sin.f64").unwrap()).cost;
        assert_eq!(add, 1.0);
        assert_eq!(sin, 100.0);
        assert!(
            t.find_operator("<.f64").is_none(),
            "predicates are not operators"
        );
    }

    #[test]
    fn herbie_improves_accuracy_without_target_knowledge() {
        let core = parse_fpcore(
            "(FPCore (x) :pre (and (> x 1e8) (< x 1e14)) (- (sqrt (+ x 1)) (sqrt x)))",
        )
        .unwrap();
        let herbie = HerbieCompiler::new(Config::fast());
        let result = herbie.compile(&core).unwrap();
        assert!(result.most_accurate().error_bits + 5.0 < result.initial.error_bits);
    }

    #[test]
    fn transcription_desugars_missing_operators() {
        let herbie = herbie_target();
        let fma = herbie.find_operator("fma.f64").unwrap();
        let program = FloatExpr::Op(
            fma,
            vec![
                FloatExpr::Var(fpcore::Symbol::new("x"), FpType::Binary64),
                FloatExpr::Var(fpcore::Symbol::new("y"), FpType::Binary64),
                FloatExpr::Var(fpcore::Symbol::new("z"), FpType::Binary64),
            ],
        );
        // Python has no fma: the transcription must expand it to x*y + z.
        let python = builtin::by_name("python").unwrap();
        let ported = transcribe(&program, &herbie, &python, FpType::Binary64).unwrap();
        assert_eq!(
            ported.desugar(&python),
            fpcore::parse_expr("(+ (* x y) z)").unwrap()
        );
        // The bare Arith target cannot express sin at all: discard.
        let sin = herbie.find_operator("sin.f64").unwrap();
        let program = FloatExpr::Op(
            sin,
            vec![FloatExpr::Var(fpcore::Symbol::new("x"), FpType::Binary64)],
        );
        let arith = builtin::by_name("arith").unwrap();
        assert!(transcribe(&program, &herbie, &arith, FpType::Binary64).is_none());
    }
}
