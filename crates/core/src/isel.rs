//! Instruction selection modulo equivalence (paper Section 5.1).
//!
//! Given a real expression and a target, Chassis builds an e-graph seeded with
//! the expression, then saturates it with
//!
//! 1. the target-independent mathematical identity rules ([`crate::rules`]), and
//! 2. *desugaring rules* derived from the target description: for every operator
//!    `op` with desugaring `D(a0, ..., an)`, the bidirectional rewrite
//!    `D(?a0, ..., ?an)  ⇌  op(?a0, ..., ?an)`.
//!
//! The resulting e-graph contains mixed real/float terms in which each e-class
//! denotes equivalence of real values; typed extraction then recovers well-typed
//! floating-point programs.

use crate::lang::{expr_to_rec, ChassisNode};
use crate::rules;
use crate::typed_extract::TypedExtractor;
use egraph::{
    EGraph, Id, NoAnalysis, Pattern, PatternNode, Rewrite, RunReport, Runner, RunnerLimits,
};
use fpcore::{Expr, FpType, Symbol};
use std::collections::HashMap;
use std::time::Duration;
use targets::operator::arg_symbol;
use targets::{FloatExpr, Target};

/// Resource limits for one instruction-selection run.
#[derive(Clone, Copy, Debug)]
pub struct IselConfig {
    /// E-graph node limit (the paper uses 8000).
    pub node_limit: usize,
    /// Saturation iteration limit.
    pub iter_limit: usize,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Cap on candidates returned by multi-extraction (the paper reports ~40).
    pub max_candidates: usize,
}

impl Default for IselConfig {
    fn default() -> Self {
        IselConfig {
            node_limit: 8_000,
            iter_limit: 6,
            time_limit: Duration::from_millis(1_500),
            max_candidates: 40,
        }
    }
}

/// The outcome of an instruction-selection run on one (sub)expression.
#[derive(Clone, Debug)]
pub struct IselResult {
    /// The lowest-cost program for each floating-point type.
    pub best: HashMap<FpType, FloatExpr>,
    /// All candidate programs from multi-extraction at the requested type.
    pub candidates: Vec<FloatExpr>,
    /// Saturation statistics.
    pub report: RunReport,
}

/// The instruction selector for one target.
pub struct InstructionSelector<'a> {
    target: &'a Target,
    rules: Vec<Rewrite<ChassisNode, NoAnalysis>>,
    config: IselConfig,
}

/// Builds the desugaring rewrites for every operator of a target.
pub fn desugaring_rules(target: &Target) -> Vec<Rewrite<ChassisNode, NoAnalysis>> {
    let mut out = Vec::new();
    for id in target.operator_ids() {
        let op = target.operator(id);
        let lhs = rules::pattern_from_expr(&op.desugaring);
        // The float side: op applied to the desugaring's argument metavariables.
        let mut nodes: Vec<PatternNode<ChassisNode>> = Vec::new();
        let mut children = Vec::new();
        for i in 0..op.arity() {
            nodes.push(PatternNode::Var(egraph::PatVar::new(
                arg_symbol(i).as_str(),
            )));
            children.push(Id::from(i));
        }
        nodes.push(PatternNode::ENode(ChassisNode::Float(id, children)));
        let rhs = Pattern::from_nodes(nodes);
        // Only emit the lowering direction when the desugaring actually mentions
        // every argument (otherwise the rhs would have unbound metavariables —
        // e.g. a hypothetical operator ignoring an argument).
        let lhs_vars = lhs.variables();
        let all_bound = (0..op.arity())
            .all(|i| lhs_vars.contains(&egraph::PatVar::new(arg_symbol(i).as_str())));
        if all_bound {
            out.push(Rewrite::new(
                format!("lower-{}", op.name),
                lhs.clone(),
                rhs.clone(),
            ));
        }
        // The desugaring direction is always valid.
        out.push(Rewrite::new(format!("desugar-{}", op.name), rhs, lhs));
    }
    out
}

impl<'a> InstructionSelector<'a> {
    /// Creates a selector for `target` with the full mathematical rule set plus
    /// the target's desugaring rules.
    pub fn new(target: &'a Target, config: IselConfig) -> Self {
        let mut all_rules = rules::full_rules::<NoAnalysis>();
        all_rules.extend(desugaring_rules(target));
        InstructionSelector {
            target,
            rules: all_rules,
            config,
        }
    }

    /// A selector that only uses the simplifying rule subset (for the
    /// cost-opportunity analysis).
    pub fn simplifying(target: &'a Target, config: IselConfig) -> Self {
        let mut all_rules = rules::simplifying_rules::<NoAnalysis>();
        all_rules.extend(desugaring_rules(target));
        InstructionSelector {
            target,
            rules: all_rules,
            config,
        }
    }

    /// The number of rewrite rules in use.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Runs instruction selection modulo equivalence on a real expression,
    /// extracting programs of the given output type.
    pub fn run(
        &self,
        expr: &Expr,
        var_types: &HashMap<Symbol, FpType>,
        output: FpType,
    ) -> IselResult {
        let rec = expr_to_rec(expr);
        let mut egraph: EGraph<ChassisNode, NoAnalysis> = EGraph::default();
        let root = egraph.add_expr(&rec);
        let limits = RunnerLimits {
            iter_limit: self.config.iter_limit,
            node_limit: self.config.node_limit,
            time_limit: self.config.time_limit,
            ..RunnerLimits::default()
        };
        let report = Runner::with_limits(limits).run(&mut egraph, &self.rules);

        let extractor = TypedExtractor::new(&egraph, self.target, var_types);
        let mut best = HashMap::new();
        for ty in FpType::numeric() {
            if let Some(expr) = extractor.extract_best(root, ty) {
                best.insert(ty, expr);
            }
        }
        let mut candidates = extractor.extract_all(root, output);
        // Ensure the globally-cheapest program is always among the candidates.
        if let Some(b) = best.get(&output) {
            if !candidates.contains(b) {
                candidates.push(b.clone());
            }
        }
        candidates.truncate(self.config.max_candidates);
        IselResult {
            best,
            candidates,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_expr;
    use targets::builtin;
    use targets::program_cost;

    fn var_types(vars: &[&str]) -> HashMap<Symbol, FpType> {
        vars.iter()
            .map(|n| (Symbol::new(n), FpType::Binary64))
            .collect()
    }

    fn run_on(target_name: &str, src: &str, vars: &[&str]) -> (IselResult, targets::Target) {
        let target = builtin::by_name(target_name).unwrap();
        let selector = InstructionSelector::new(&target, IselConfig::default());
        let result = selector.run(
            &parse_expr(src).unwrap(),
            &var_types(vars),
            FpType::Binary64,
        );
        (result, target)
    }

    #[test]
    fn lowers_simple_arithmetic_on_every_target() {
        for name in ["arith", "c99", "python", "julia", "numpy", "fdlibm", "vdt"] {
            let (result, target) = run_on(name, "(+ (* x x) 1)", &["x"]);
            let best = result
                .best
                .get(&FpType::Binary64)
                .unwrap_or_else(|| panic!("no lowering on {name}"));
            // Whatever operators were chosen, the program must still compute x²+1.
            let env: std::collections::HashMap<Symbol, f64> =
                [(Symbol::new("x"), 3.0)].into_iter().collect();
            let out = targets::eval_float_expr_in(&target, best, &env);
            assert!(
                (out - 10.0).abs() < 1e-9,
                "{name}: {} gave {out}",
                best.render(&target)
            );
        }
    }

    #[test]
    fn selects_fma_when_available() {
        let (result, target) = run_on("arith-fma", "(+ (* x y) z)", &["x", "y", "z"]);
        let best = result.best.get(&FpType::Binary64).unwrap();
        assert!(
            best.render(&target).contains("fma.f64"),
            "expected an fma, got {}",
            best.render(&target)
        );
        // The plain mul+add version must also be among the candidates.
        assert!(result.candidates.len() >= 2);
    }

    #[test]
    fn avx_uses_rcp_for_reciprocals_in_single_precision() {
        let target = builtin::by_name("avx").unwrap();
        let selector = InstructionSelector::new(&target, IselConfig::default());
        let vars: HashMap<Symbol, FpType> =
            [(Symbol::new("x"), FpType::Binary32)].into_iter().collect();
        let result = selector.run(&parse_expr("(/ 1 x)").unwrap(), &vars, FpType::Binary32);
        let best = result.best.get(&FpType::Binary32).unwrap();
        assert!(
            best.render(&target).contains("rcp.f32"),
            "expected rcpps, got {}",
            best.render(&target)
        );
        let div_version = result
            .candidates
            .iter()
            .find(|c| c.render(&target).contains("/.f32"));
        assert!(
            div_version.is_some(),
            "the exact division must remain a candidate"
        );
        let rcp_cost = program_cost(&target, best);
        let div_cost = program_cost(&target, div_version.unwrap());
        assert!(rcp_cost < div_cost);
    }

    #[test]
    fn julia_selects_log1p_helper() {
        let (result, target) = run_on("julia", "(log (+ 1 x))", &["x"]);
        let best = result.best.get(&FpType::Binary64).unwrap();
        assert!(
            best.render(&target).contains("log1p.f64"),
            "expected log1p, got {}",
            best.render(&target)
        );
    }

    #[test]
    fn fdlibm_selects_log1pmd_for_the_acoth_kernel() {
        // The paper's overview example: log1p(x) - log1p(-x) should become a
        // single call to the library-internal log1pmd operator.
        let (result, target) = run_on("fdlibm", "(- (log1p x) (log1p (- x)))", &["x"]);
        let best = result.best.get(&FpType::Binary64).unwrap();
        assert!(
            best.render(&target).contains("log1pmd.f64"),
            "expected log1pmd, got {}",
            best.render(&target)
        );
    }

    #[test]
    fn desugaring_is_preserved_by_all_candidates() {
        let (result, target) = run_on("c99", "(- (sqrt (+ x 1)) (sqrt x))", &["x"]);
        assert!(!result.candidates.is_empty());
        // Every candidate must desugar to a real expression; spot-check that the
        // desugarings mention the input variable and are valid expressions.
        for candidate in &result.candidates {
            let desugared = candidate.desugar(&target);
            assert!(desugared.variables().contains(&Symbol::new("x")));
        }
    }

    #[test]
    fn respects_node_limit() {
        let target = builtin::by_name("c99").unwrap();
        let config = IselConfig {
            node_limit: 50,
            ..IselConfig::default()
        };
        let selector = InstructionSelector::new(&target, config);
        let result = selector.run(
            &parse_expr("(+ (* a b) (+ (* c d) (* e f)))").unwrap(),
            &var_types(&["a", "b", "c", "d", "e", "f"]),
            FpType::Binary64,
        );
        assert!(result.report.nodes <= 200, "node limit should bound growth");
    }

    #[test]
    fn desugaring_rules_cover_every_operator() {
        for name in ["avx", "julia", "vdt"] {
            let target = builtin::by_name(name).unwrap();
            let rules = desugaring_rules(&target);
            // At least one rule per operator (the desugar direction always exists).
            assert!(rules.len() >= target.operators.len());
        }
    }
}
