//! Regime inference: combining candidates with branch conditions.
//!
//! The paper inherits Herbie's regime-inference step (Section 2: "the sampling
//! and regime steps are shared with prior work"): different candidates can be
//! best on different parts of the input domain, so Chassis stitches them together
//! with an `if` on a single variable against a threshold. This implementation
//! considers single-variable threshold splits between pairs of Pareto-optimal
//! candidates and keeps a split only when it reduces the training error of the
//! most accurate known program by a meaningful margin.

// On the `compile_many` call path: regime inference degrades (returns
// `None`), it never unwraps (docs/RESILIENCE.md).
#![deny(clippy::unwrap_used, clippy::expect_used)]
use crate::improve::Candidate;
use crate::par;
use crate::pareto::ParetoFrontier;
use crate::sample::SampleSet;
use crate::session::{Phase, Progress, SearchCtx};
use fpcore::RealOp;
use targets::{program_cost, CompileOptions, FloatExpr, Target};

/// Minimum improvement (mean bits of error) required to keep a branch.
const MIN_IMPROVEMENT_BITS: f64 = 0.5;

/// Per-point training errors of one candidate, computed on the block engine
/// (one bytecode compilation per candidate, one instruction dispatch per
/// block of points).
fn per_point_errors(
    target: &Target,
    expr: &FloatExpr,
    samples: &SampleSet,
    options: &CompileOptions,
) -> Vec<f64> {
    crate::accuracy::per_point_errors_with(
        target,
        expr,
        &samples.vars,
        &samples.train,
        &samples.train_truth,
        samples.output_type,
        options,
    )
}

/// Candidate split thresholds for a variable: quantiles of its training values
/// plus a few universal anchors.
fn candidate_thresholds(values: &mut Vec<f64>) -> Vec<f64> {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values.dedup();
    let mut out = vec![0.0, 1.0, -1.0];
    for q in [0.25, 0.5, 0.75] {
        if !values.is_empty() {
            let idx = ((values.len() - 1) as f64 * q) as usize;
            out.push(values[idx]);
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    out.dedup();
    out
}

/// Attempts to improve on the most accurate candidate by branching between two
/// frontier candidates on one variable. Returns the branched program and its
/// (cost, mean error bits) when a worthwhile split exists.
pub fn infer_regimes(
    target: &Target,
    frontier: &ParetoFrontier<Candidate>,
    samples: &SampleSet,
) -> Option<(FloatExpr, f64, f64)> {
    infer_regimes_with(target, frontier, samples, &SearchCtx::detached())
}

/// [`infer_regimes`] under a [`SearchCtx`]: the wall-clock budget is checked
/// once before the per-candidate error sweeps and again at the start of each
/// variable's threshold scan, so an exhausted budget returns the best split
/// found so far (or `None`) instead of finishing the scan. A fired
/// [`CancelToken`](crate::CancelToken) cuts at the same two points. With an
/// unlimited budget and no cancellation this is [`infer_regimes`] exactly.
///
/// Both expensive stages fan out over [`chassis::par`](crate::par):
///
/// 1. each candidate's per-point error sweep (one bytecode compilation plus a
///    pass over the training points) runs on its own worker, results in
///    candidate order;
/// 2. each variable's threshold scan runs on its own worker, and the
///    per-variable winners are folded **in variable order** with the same
///    strict `<` the serial scan uses, so the selected split (and its
///    tie-breaking) is bit-identical to the serial scan at any thread count.
pub fn infer_regimes_with(
    target: &Target,
    frontier: &ParetoFrontier<Candidate>,
    samples: &SampleSet,
    ctx: &SearchCtx,
) -> Option<(FloatExpr, f64, f64)> {
    if frontier.len() < 2 || samples.train.is_empty() || samples.vars.is_empty() {
        return None;
    }
    let candidates: Vec<&Candidate> = frontier.iter().map(|(_, _, c)| c).collect();
    if ctx.out_of_time() {
        ctx.emit(Progress::BudgetExhausted {
            phase: Phase::Regimes,
            iterations_completed: 0,
        });
        return None;
    }
    // Cache per-point errors for every candidate (the expensive part), one
    // candidate per worker.
    let errors: Vec<Vec<f64>> = par::par_map(&candidates, |c| {
        per_point_errors(target, &c.expr, samples, ctx.options())
    });
    let baseline = frontier.most_accurate()?;
    let baseline_error = baseline.1;

    // One independent threshold scan per variable. Each scan returns the
    // variable's best split under the serial scan's order (first strictly
    // better in (threshold, low, high) order wins), plus whether it was
    // skipped entirely because the budget expired before it started.
    type VarScan = (Option<(FloatExpr, f64, f64)>, bool);
    let scans: Vec<VarScan> = par::par_map_range(samples.vars.len(), |var_idx| {
        if ctx.out_of_time() {
            return (None, true);
        }
        let var = &samples.vars[var_idx];
        // The columnar layout hands us the variable's training values as
        // one contiguous slice — both for the threshold quantiles and the
        // split scan below.
        let column = samples.train.col(var_idx);
        let mut values: Vec<f64> = column.to_vec();
        let mut best: Option<(FloatExpr, f64, f64)> = None;
        for threshold in candidate_thresholds(&mut values) {
            for (i, low_candidate) in candidates.iter().enumerate() {
                for (j, high_candidate) in candidates.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    // Mean error when using candidate i below the threshold and j above.
                    let mut total = 0.0;
                    for (k, &value) in column.iter().enumerate() {
                        let err = if value < threshold {
                            errors[i][k]
                        } else {
                            errors[j][k]
                        };
                        total += err;
                    }
                    let mean = total / samples.train.len() as f64;
                    if mean + MIN_IMPROVEMENT_BITS < baseline_error
                        && best.as_ref().is_none_or(|(_, _, e)| mean < *e)
                    {
                        let branched = FloatExpr::If(
                            Box::new(FloatExpr::Cmp(
                                RealOp::Lt,
                                Box::new(FloatExpr::Var(*var, samples.output_type)),
                                Box::new(FloatExpr::literal(threshold, samples.output_type)),
                            )),
                            Box::new(low_candidate.expr.clone()),
                            Box::new(high_candidate.expr.clone()),
                        );
                        let cost = program_cost(target, &branched);
                        best = Some((branched, cost, mean));
                    }
                }
            }
        }
        (best, false)
    });

    // Fold the per-variable winners in variable order with the same strict
    // comparison, reproducing the serial scan's tie-breaking exactly.
    let mut best: Option<(FloatExpr, f64, f64)> = None;
    let mut completed = 0usize;
    let mut cut_short = false;
    for (scan, skipped) in scans {
        if skipped {
            cut_short = true;
            continue;
        }
        completed += 1;
        if let Some((branched, cost, mean)) = scan {
            if best.as_ref().is_none_or(|(_, _, e)| mean < *e) {
                best = Some((branched, cost, mean));
            }
        }
    }
    if cut_short {
        ctx.emit(Progress::BudgetExhausted {
            phase: Phase::Regimes,
            iterations_completed: completed,
        });
    }
    best
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::lower::DirectLowering;
    use crate::sample::Sampler;
    use fpcore::{parse_expr, parse_fpcore, FpType};
    use targets::builtin;

    #[test]
    fn no_split_when_one_candidate_dominates_everywhere() {
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore("(FPCore (x) (+ x 1))").unwrap();
        let lowering = DirectLowering::new(&t);
        let prog = lowering.lower(&core.body, FpType::Binary64).unwrap();
        let samples = Sampler::new(9).sample(&core, 8, 2).unwrap();
        let mut frontier = ParetoFrontier::new();
        let (err, _) = accuracy::evaluate_on_train(&t, &prog, &samples);
        frontier.insert(
            program_cost(&t, &prog),
            err,
            Candidate {
                expr: prog,
                cost: 0.0,
                error_bits: err,
            },
        );
        assert!(infer_regimes(&t, &frontier, &samples).is_none());
    }

    #[test]
    fn splits_between_complementary_candidates() {
        // expm1(x) is exact for the function e^x - 1; exp(x) - 1 is terrible near
        // zero but fine for large x... construct two artificial candidates that
        // are each good on one side of zero and check a split is found.
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore("(FPCore (x) :pre (and (> x -1) (< x 1)) (expm1 x))").unwrap();
        let samples = Sampler::new(17).sample(&core, 16, 4).unwrap();
        let lowering = DirectLowering::new(&t);
        // Candidate A: accurate everywhere (direct expm1).
        let good = lowering.lower(&core.body, FpType::Binary64).unwrap();
        // Candidate B: exp(x) - 1 (inaccurate near zero, cheap-ish elsewhere).
        let bad = lowering
            .lower(&parse_expr("(- (exp x) 1)").unwrap(), FpType::Binary64)
            .unwrap();
        let mut frontier = ParetoFrontier::new();
        for expr in [good.clone(), bad.clone()] {
            let (err, _) = accuracy::evaluate_on_train(&t, &expr, &samples);
            let cost = program_cost(&t, &expr);
            frontier.insert(
                cost,
                err,
                Candidate {
                    expr,
                    cost,
                    error_bits: err,
                },
            );
        }
        // A regime split can only help if both candidates survived on the frontier
        // (the accurate one may dominate outright, in which case no split is the
        // right answer). Either outcome must not panic.
        let _ = infer_regimes(&t, &frontier, &samples);
    }
}
