//! Direct lowering of real expressions to target programs.
//!
//! Direct lowering maps each real operator to the target operator whose
//! desugaring is exactly that operator applied to its arguments (e.g. `+` lowers
//! to `+.f64`). It is used for the initial candidate program, for transcribing
//! Herbie's target-agnostic output onto a target (Section 6.3), and by the
//! traditional-compiler baseline. Operators with no direct counterpart can first
//! be *desugared* into simpler operators (`fma(a,b,c)` → `a*b+c`) exactly as the
//! paper does when porting Herbie output.

use fpcore::{Expr, FpType, RealOp, Symbol};
use std::collections::HashMap;
use targets::operator::arg_symbol;
use targets::{FloatExpr, OpId, Target};

/// Why an expression could not be lowered onto a target.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// No operator on the target implements this real operator at this type.
    UnsupportedOperator(RealOp, FpType),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnsupportedOperator(op, ty) => {
                write!(f, "operator {op} is not available at {ty} on this target")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// An index from real operators to the target operators that implement them
/// directly (i.e. whose desugaring is `op(a0, ..., an)`).
#[derive(Clone, Debug)]
pub struct DirectLowering {
    index: HashMap<(RealOp, FpType), OpId>,
}

impl DirectLowering {
    /// Builds the index for a target.
    pub fn new(target: &Target) -> DirectLowering {
        let mut index = HashMap::new();
        for id in target.operator_ids() {
            let op = target.operator(id);
            if let Expr::Op(real, args) = &op.desugaring {
                let is_direct = args.len() == op.arity()
                    && args
                        .iter()
                        .enumerate()
                        .all(|(i, a)| *a == Expr::Var(arg_symbol(i)));
                if is_direct {
                    index.entry((*real, op.ret_type)).or_insert(id);
                }
            }
        }
        DirectLowering { index }
    }

    /// The operator directly implementing `op` at type `ty`, if any.
    pub fn operator_for(&self, op: RealOp, ty: FpType) -> Option<OpId> {
        self.index.get(&(op, ty)).copied()
    }

    /// Lowers a real expression to a target program at type `ty`.
    ///
    /// Conditionals lower to [`FloatExpr::If`] with comparisons kept as
    /// comparisons; numeric operators must be directly available.
    pub fn lower(&self, expr: &Expr, ty: FpType) -> Result<FloatExpr, LowerError> {
        match expr {
            Expr::Num(c) => Ok(FloatExpr::literal(c.to_f64(), ty)),
            Expr::Var(v) => Ok(FloatExpr::Var(*v, ty)),
            Expr::If(c, t, e) => Ok(FloatExpr::If(
                Box::new(self.lower_condition(c, ty)?),
                Box::new(self.lower(t, ty)?),
                Box::new(self.lower(e, ty)?),
            )),
            Expr::Op(op, args) if op.is_comparison() || op.is_boolean_connective() => {
                self.lower_condition(expr, ty)
            }
            Expr::Op(op, args) => {
                let lowered_args: Result<Vec<FloatExpr>, LowerError> =
                    args.iter().map(|a| self.lower(a, ty)).collect();
                let lowered_args = lowered_args?;
                if let Some(id) = self.operator_for(*op, ty) {
                    return Ok(FloatExpr::Op(id, lowered_args));
                }
                Err(LowerError::UnsupportedOperator(*op, ty))
            }
        }
    }

    fn lower_condition(&self, expr: &Expr, ty: FpType) -> Result<FloatExpr, LowerError> {
        match expr {
            Expr::Op(op, args) if op.is_comparison() => Ok(FloatExpr::Cmp(
                *op,
                Box::new(self.lower(&args[0], ty)?),
                Box::new(self.lower(&args[1], ty)?),
            )),
            // Boolean connectives are encoded with nested conditionals so that the
            // output stays within the FloatExpr vocabulary every target supports.
            Expr::Op(RealOp::And, args) => Ok(FloatExpr::If(
                Box::new(self.lower_condition(&args[0], ty)?),
                Box::new(self.lower_condition(&args[1], ty)?),
                Box::new(FloatExpr::literal(0.0, ty)),
            )),
            Expr::Op(RealOp::Or, args) => Ok(FloatExpr::If(
                Box::new(self.lower_condition(&args[0], ty)?),
                Box::new(FloatExpr::literal(1.0, ty)),
                Box::new(self.lower_condition(&args[1], ty)?),
            )),
            Expr::Op(RealOp::Not, args) => Ok(FloatExpr::If(
                Box::new(self.lower_condition(&args[0], ty)?),
                Box::new(FloatExpr::literal(0.0, ty)),
                Box::new(FloatExpr::literal(1.0, ty)),
            )),
            other => self.lower(other, ty),
        }
    }
}

/// Rewrites a real expression so that operators missing from the target are
/// expressed through simpler ones (the "desugar unsupported operators" step used
/// when porting Herbie output, Section 6.3). Returns the rewritten expression;
/// operators that cannot be desugared are left in place and will surface as
/// [`LowerError`]s during lowering.
pub fn desugar_unsupported(expr: &Expr, lowering: &DirectLowering, ty: FpType) -> Expr {
    let rewritten = match expr {
        Expr::Num(_) | Expr::Var(_) => expr.clone(),
        Expr::If(c, t, e) => Expr::If(
            Box::new(desugar_unsupported(c, lowering, ty)),
            Box::new(desugar_unsupported(t, lowering, ty)),
            Box::new(desugar_unsupported(e, lowering, ty)),
        ),
        Expr::Op(op, args) => {
            let args: Vec<Expr> = args
                .iter()
                .map(|a| desugar_unsupported(a, lowering, ty))
                .collect();
            Expr::Op(*op, args)
        }
    };
    match &rewritten {
        Expr::Op(op, args)
            if !op.is_comparison()
                && !op.is_boolean_connective()
                && lowering.operator_for(*op, ty).is_none() =>
        {
            if let Some(replacement) = fallback_expansion(*op, args) {
                desugar_unsupported(&replacement, lowering, ty)
            } else {
                rewritten
            }
        }
        _ => rewritten,
    }
}

/// A textbook expansion of an operator into simpler operators, used when a target
/// lacks the operator entirely (e.g. `fma` on Python).
fn fallback_expansion(op: RealOp, args: &[Expr]) -> Option<Expr> {
    use RealOp::*;
    let a = || args[0].clone();
    let b = || args.get(1).cloned().unwrap_or_else(|| Expr::int(0));
    let c = || args.get(2).cloned().unwrap_or_else(|| Expr::int(0));
    let e = match op {
        Fma => Expr::bin(Add, Expr::bin(Mul, a(), b()), c()),
        Neg => Expr::bin(Sub, Expr::int(0), a()),
        Hypot => Expr::un(
            Sqrt,
            Expr::bin(Add, Expr::bin(Mul, a(), a()), Expr::bin(Mul, b(), b())),
        ),
        Expm1 => Expr::bin(Sub, Expr::un(Exp, a()), Expr::int(1)),
        Log1p => Expr::un(Log, Expr::bin(Add, Expr::int(1), a())),
        Exp2 => Expr::bin(Pow, Expr::int(2), a()),
        Log2 => Expr::bin(Div, Expr::un(Log, a()), Expr::un(Log, Expr::int(2))),
        Log10 => Expr::bin(Div, Expr::un(Log, a()), Expr::un(Log, Expr::int(10))),
        Cbrt => Expr::bin(
            Pow,
            a(),
            Expr::Num(fpcore::Constant::Rational(fpcore::Rational::new(1, 3))),
        ),
        Fdim => Expr::If(
            Box::new(Expr::bin(Gt, a(), b())),
            Box::new(Expr::bin(Sub, a(), b())),
            Box::new(Expr::int(0)),
        ),
        Tan => Expr::bin(Div, Expr::un(Sin, a()), Expr::un(Cos, a())),
        Sinh => Expr::bin(
            Div,
            Expr::bin(Sub, Expr::un(Exp, a()), Expr::un(Exp, Expr::un(Neg, a()))),
            Expr::int(2),
        ),
        Cosh => Expr::bin(
            Div,
            Expr::bin(Add, Expr::un(Exp, a()), Expr::un(Exp, Expr::un(Neg, a()))),
            Expr::int(2),
        ),
        Tanh => Expr::bin(Div, Expr::un(Sinh, a()), Expr::un(Cosh, a())),
        Asinh => Expr::un(
            Log,
            Expr::bin(
                Add,
                a(),
                Expr::un(Sqrt, Expr::bin(Add, Expr::bin(Mul, a(), a()), Expr::int(1))),
            ),
        ),
        Acosh => Expr::un(
            Log,
            Expr::bin(
                Add,
                a(),
                Expr::un(Sqrt, Expr::bin(Sub, Expr::bin(Mul, a(), a()), Expr::int(1))),
            ),
        ),
        Atanh => Expr::bin(
            Div,
            Expr::un(
                Log,
                Expr::bin(
                    Div,
                    Expr::bin(Add, Expr::int(1), a()),
                    Expr::bin(Sub, Expr::int(1), a()),
                ),
            ),
            Expr::int(2),
        ),
        Pow => Expr::un(Exp, Expr::bin(Mul, b(), Expr::un(Log, a()))),
        Copysign | Fmod | Round | Trunc | Floor | Ceil | Fmin | Fmax => return None,
        _ => return None,
    };
    Some(e)
}

/// Convenience: lowers an FPCore body directly, choosing the output type from the
/// core's `:precision`.
pub fn lower_fpcore(core: &fpcore::FPCore, target: &Target) -> Result<FloatExpr, LowerError> {
    let lowering = DirectLowering::new(target);
    let desugared = desugar_unsupported(&core.body, &lowering, core.precision);
    lowering.lower(&desugared, core.precision)
}

/// The variable types of an FPCore, as a map (used by typed extraction).
pub fn variable_types(core: &fpcore::FPCore) -> HashMap<Symbol, FpType> {
    core.args.iter().map(|(s, t)| (*s, *t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::{parse_expr, parse_fpcore};
    use targets::builtin;

    #[test]
    fn lowers_arithmetic_directly() {
        let t = builtin::by_name("c99").unwrap();
        let lowering = DirectLowering::new(&t);
        let expr = parse_expr("(+ (* x x) (sqrt y))").unwrap();
        let prog = lowering.lower(&expr, FpType::Binary64).unwrap();
        assert_eq!(prog.desugar(&t), expr);
        // Lowering at binary32 picks the f32 operators.
        let prog32 = lowering.lower(&expr, FpType::Binary32).unwrap();
        assert!(prog32.render(&t).contains(".f32"));
    }

    #[test]
    fn missing_operators_are_reported() {
        let t = builtin::by_name("arith").unwrap();
        let lowering = DirectLowering::new(&t);
        let expr = parse_expr("(exp x)").unwrap();
        assert_eq!(
            lowering.lower(&expr, FpType::Binary64),
            Err(LowerError::UnsupportedOperator(
                RealOp::Exp,
                FpType::Binary64
            ))
        );
    }

    #[test]
    fn fma_desugars_on_python() {
        let t = builtin::by_name("python").unwrap();
        let core = parse_fpcore("(FPCore (x y z) (fma x y z))").unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        // Python has no fma, so the lowering uses multiply + add.
        assert_eq!(prog.desugar(&t), parse_expr("(+ (* x y) z)").unwrap());
    }

    #[test]
    fn conditionals_and_preconditions_lower() {
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore("(FPCore (x) (if (and (> x 0) (< x 1)) (sqrt x) x))").unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        assert!(matches!(prog, FloatExpr::If(_, _, _)));
    }

    #[test]
    fn negation_lowers_on_avx_via_subtraction() {
        // AVX has no negation instruction; lowering must still succeed.
        let t = builtin::by_name("avx").unwrap();
        let core = parse_fpcore("(FPCore (x) (- x))").unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        assert_eq!(prog.desugar(&t), parse_expr("(- 0 x)").unwrap());
    }

    #[test]
    fn transcendentals_cannot_be_lowered_to_avx() {
        let t = builtin::by_name("avx").unwrap();
        let core = parse_fpcore("(FPCore (x) (sin x))").unwrap();
        assert!(lower_fpcore(&core, &t).is_err());
    }

    #[test]
    fn julia_helpers_are_not_used_by_direct_lowering() {
        // Direct lowering is deliberately naive: sind is only reachable through
        // instruction selection, not through the one-to-one index.
        let t = builtin::by_name("julia").unwrap();
        let lowering = DirectLowering::new(&t);
        assert!(lowering
            .operator_for(RealOp::Sin, FpType::Binary64)
            .is_some());
        let expr = parse_expr("(sin (* x (/ PI 180)))").unwrap();
        let prog = lowering.lower(&expr, FpType::Binary64).unwrap();
        assert!(!prog.render(&t).contains("sind"));
    }
}
