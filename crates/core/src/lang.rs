//! The mixed real/float e-graph language (paper Section 5.1).
//!
//! Chassis performs equality saturation over expressions that freely mix
//! real-number operators (whose e-classes denote equivalence of real values) and
//! target-specific floating-point operators (related to the real fragment through
//! their desugarings). [`ChassisNode`] is the e-node type; conversions to and from
//! [`fpcore::Expr`] and [`targets::FloatExpr`] live here too.

use egraph::{Id, Language, RecExpr};
use fpcore::{Constant, Expr, RealOp, Symbol};
use targets::{FloatExpr, OpId, Target};

/// An e-node of the mixed real/float language.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum ChassisNode {
    /// A real-number literal.
    Num(Constant),
    /// A free variable.
    Var(Symbol),
    /// A real-number operator applied to e-classes.
    Real(RealOp, Vec<Id>),
    /// A target-specific floating-point operator applied to e-classes.
    Float(OpId, Vec<Id>),
    /// A conditional (kept opaque during instruction selection).
    If([Id; 3]),
}

impl Language for ChassisNode {
    fn children(&self) -> &[Id] {
        match self {
            ChassisNode::Num(_) | ChassisNode::Var(_) => &[],
            ChassisNode::Real(_, c) | ChassisNode::Float(_, c) => c,
            ChassisNode::If(c) => c,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            ChassisNode::Num(_) | ChassisNode::Var(_) => &mut [],
            ChassisNode::Real(_, c) | ChassisNode::Float(_, c) => c,
            ChassisNode::If(c) => c,
        }
    }

    fn matches_op(&self, other: &Self) -> bool {
        match (self, other) {
            (ChassisNode::Num(a), ChassisNode::Num(b)) => a == b,
            (ChassisNode::Var(a), ChassisNode::Var(b)) => a == b,
            (ChassisNode::Real(a, ca), ChassisNode::Real(b, cb)) => a == b && ca.len() == cb.len(),
            (ChassisNode::Float(a, ca), ChassisNode::Float(b, cb)) => {
                a == b && ca.len() == cb.len()
            }
            (ChassisNode::If(_), ChassisNode::If(_)) => true,
            _ => false,
        }
    }
}

/// Converts a real expression into a flattened [`RecExpr`] over [`ChassisNode`]s.
pub fn expr_to_rec(expr: &Expr) -> RecExpr<ChassisNode> {
    fn go(expr: &Expr, out: &mut RecExpr<ChassisNode>) -> Id {
        match expr {
            Expr::Num(c) => out.add(ChassisNode::Num(*c)),
            Expr::Var(v) => out.add(ChassisNode::Var(*v)),
            Expr::Op(op, args) => {
                let children: Vec<Id> = args.iter().map(|a| go(a, out)).collect();
                out.add(ChassisNode::Real(*op, children))
            }
            Expr::If(c, t, e) => {
                let c = go(c, out);
                let t = go(t, out);
                let e = go(e, out);
                out.add(ChassisNode::If([c, t, e]))
            }
        }
    }
    let mut out = RecExpr::new();
    go(expr, &mut out);
    out
}

/// Converts a [`RecExpr`] back to a real expression.
///
/// # Panics
///
/// Panics if the term contains floating-point operators (use
/// [`rec_to_float_expr`] for those).
pub fn rec_to_expr(rec: &RecExpr<ChassisNode>, root: Id) -> Expr {
    match rec.node(root) {
        ChassisNode::Num(c) => Expr::Num(*c),
        ChassisNode::Var(v) => Expr::Var(*v),
        ChassisNode::Real(op, children) => {
            Expr::Op(*op, children.iter().map(|&c| rec_to_expr(rec, c)).collect())
        }
        ChassisNode::If([c, t, e]) => Expr::If(
            Box::new(rec_to_expr(rec, *c)),
            Box::new(rec_to_expr(rec, *t)),
            Box::new(rec_to_expr(rec, *e)),
        ),
        ChassisNode::Float(_, _) => panic!("rec_to_expr called on a floating-point term"),
    }
}

/// Converts a purely floating-point [`RecExpr`] into a target program.
///
/// Numeric literals and variables are given the type expected by their context
/// (`expected` for the root). Returns `None` if a real operator remains in the
/// term (i.e. the term is not a valid lowering).
pub fn rec_to_float_expr(
    rec: &RecExpr<ChassisNode>,
    root: Id,
    target: &Target,
    expected: fpcore::FpType,
) -> Option<FloatExpr> {
    match rec.node(root) {
        ChassisNode::Num(c) => Some(FloatExpr::literal(c.to_f64(), expected)),
        ChassisNode::Var(v) => Some(FloatExpr::Var(*v, expected)),
        ChassisNode::Float(op, children) => {
            let operator = target.operator(*op);
            let args: Option<Vec<FloatExpr>> = children
                .iter()
                .zip(&operator.arg_types)
                .map(|(&c, ty)| rec_to_float_expr(rec, c, target, *ty))
                .collect();
            Some(FloatExpr::Op(*op, args?))
        }
        ChassisNode::Real(_, _) | ChassisNode::If(_) => None,
    }
}

/// Converts a target program into a flattened mixed-language term (all nodes are
/// `Float`, `Num`, or `Var`).
pub fn float_expr_to_rec(expr: &FloatExpr, _target: &Target) -> RecExpr<ChassisNode> {
    fn go(expr: &FloatExpr, out: &mut RecExpr<ChassisNode>) -> Id {
        match expr {
            FloatExpr::Num(v, _) => {
                let c = fpcore::Rational::from_f64(*v).map_or(Constant::Nan, Constant::Rational);
                out.add(ChassisNode::Num(c))
            }
            FloatExpr::Var(v, _) => out.add(ChassisNode::Var(*v)),
            FloatExpr::Op(id, args) => {
                let children: Vec<Id> = args.iter().map(|a| go(a, out)).collect();
                out.add(ChassisNode::Float(*id, children))
            }
            FloatExpr::Cmp(op, a, b) => {
                let a = go(a, out);
                let b = go(b, out);
                out.add(ChassisNode::Real(*op, vec![a, b]))
            }
            FloatExpr::If(c, t, e) => {
                let c = go(c, out);
                let t = go(t, out);
                let e = go(e, out);
                out.add(ChassisNode::If([c, t, e]))
            }
        }
    }
    let mut out = RecExpr::new();
    go(expr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_expr;
    use fpcore::FpType::Binary64;
    use targets::builtin;

    #[test]
    fn expr_round_trip() {
        for src in [
            "(+ x 1)",
            "(if (< x 0) (- x) x)",
            "(sqrt (* x x))",
            "(fma a b c)",
        ] {
            let e = parse_expr(src).unwrap();
            let rec = expr_to_rec(&e);
            assert_eq!(rec_to_expr(&rec, rec.root()), e, "round trip of {src}");
        }
    }

    #[test]
    fn matches_op_distinguishes_operators() {
        let a = ChassisNode::Real(RealOp::Add, vec![Id::from(0usize), Id::from(1usize)]);
        let b = ChassisNode::Real(RealOp::Add, vec![Id::from(2usize), Id::from(3usize)]);
        let c = ChassisNode::Real(RealOp::Mul, vec![Id::from(0usize), Id::from(1usize)]);
        assert!(a.matches_op(&b));
        assert!(!a.matches_op(&c));
        let f = ChassisNode::Float(OpId(0), vec![Id::from(0usize)]);
        let g = ChassisNode::Float(OpId(1), vec![Id::from(0usize)]);
        assert!(!f.matches_op(&g));
        assert!(!f.matches_op(&a));
    }

    #[test]
    fn float_expr_round_trip_through_rec() {
        let t = builtin::by_name("c99").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        let exp = t.find_operator("exp.f64").unwrap();
        let prog = FloatExpr::Op(
            add,
            vec![
                FloatExpr::Op(exp, vec![FloatExpr::Var(Symbol::new("x"), Binary64)]),
                FloatExpr::literal(1.0, Binary64),
            ],
        );
        let rec = float_expr_to_rec(&prog, &t);
        let back = rec_to_float_expr(&rec, rec.root(), &t, Binary64).unwrap();
        assert_eq!(back.desugar(&t), prog.desugar(&t));
    }

    #[test]
    fn mixed_terms_are_not_valid_lowerings() {
        let t = builtin::by_name("c99").unwrap();
        let e = parse_expr("(+ x 1)").unwrap();
        let rec = expr_to_rec(&e);
        assert!(rec_to_float_expr(&rec, rec.root(), &t, Binary64).is_none());
    }
}
