//! Order-preserving parallel iteration for the evaluation hot paths.
//!
//! Accuracy evaluation scores each sampled point independently, which makes the
//! improve/Pareto loop embarrassingly parallel (cf. *Fast Mixed-Precision Real
//! Evaluation*). With the `parallel` feature (default) the helpers here fan work
//! out over `std::thread::scope` in contiguous chunks, one per worker, and
//! reassemble results **in input order** — so every caller observes exactly the
//! serial result, bit for bit, regardless of thread count. Without the feature
//! they degrade to plain serial iteration and the crate stays single-threaded.
//!
//! The worker count defaults to the machine's available parallelism and can be
//! overridden at runtime with [`set_thread_count`] or the `CHASSIS_THREADS`
//! environment variable (useful for benchmarking the serial/parallel paths
//! against each other in one process).

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 means "not overridden": fall back to `CHASSIS_THREADS`, then to the
/// machine's available parallelism.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

#[cfg(feature = "parallel")]
std::thread_local! {
    /// True inside a `par_map` worker. Nested calls (a parallel corpus loop
    /// whose benchmarks each evaluate accuracy in parallel) run serially in
    /// their worker instead of oversubscribing the machine ~cores² threads.
    static IN_PAR_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Forces the worker count used by the `par_*` helpers; `0` restores the
/// default (the `CHASSIS_THREADS` environment variable, or all cores).
pub fn set_thread_count(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The worker count the `par_*` helpers will use for `len` items.
///
/// `CHASSIS_THREADS` is read and parsed once per process (the helpers sit on
/// the evaluation hot path, and the variable cannot meaningfully change
/// mid-run); [`set_thread_count`] remains live at every call.
pub fn effective_threads(len: usize) -> usize {
    static ENV_DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let configured = match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => *ENV_DEFAULT.get_or_init(|| {
            std::env::var("CHASSIS_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
        }),
        n => n,
    };
    configured.min(len).max(1)
}

/// Maps `f` over the index range `0..len`, returning results in index order.
///
/// This is the core primitive: with the `parallel` feature, the range is split
/// into one contiguous sub-range per worker and results are concatenated in
/// range order, so the output is identical to `(0..len).map(f).collect()` —
/// no index buffer is materialized on either path.
pub fn par_map_range<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range_with(len, || (), |(), i| f(i))
}

/// Like [`par_map_range`], but each worker first builds private scratch state
/// with `init` and threads it through every index of its chunk.
///
/// This is how the evaluation hot loop shares a compiled
/// [`Program`](targets::compile::Program) across workers: the program (and the
/// resolved point columns) are borrowed immutably by every worker, while each
/// worker's register file is built once per chunk — not once per point — by
/// `init`. The state cannot influence results (it is scratch space), so the
/// output remains bit-identical to the serial path at any thread count.
#[cfg(feature = "parallel")]
pub fn par_map_range_with<S, R, I, F>(len: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let serial = |range: std::ops::Range<usize>| {
        let mut state = init();
        range.map(|i| f(&mut state, i)).collect::<Vec<R>>()
    };
    if len < 2 || IN_PAR_WORKER.with(|w| w.get()) {
        return serial(0..len);
    }
    let threads = effective_threads(len);
    if threads <= 1 {
        return serial(0..len);
    }
    let chunk_size = len.div_ceil(threads);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk_size)
            .map(|start| {
                let end = (start + chunk_size).min(len);
                scope.spawn(move || {
                    IN_PAR_WORKER.with(|w| w.set(true));
                    let mut state = init();
                    (start..end).map(|i| f(&mut state, i)).collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
        out
    })
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn par_map_range_with<S, R, I, F>(len: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let mut state = init();
    (0..len).map(|i| f(&mut state, i)).collect()
}

/// Maps `f` over `items`, returning results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Serializes tests that mutate the global thread-count override; shared with
/// other in-crate test modules so they cannot race each other.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_override_is_respected() {
        let _guard = test_lock();
        set_thread_count(3);
        assert_eq!(effective_threads(100), 3);
        assert_eq!(effective_threads(2), 2);
        set_thread_count(0);
        assert!(effective_threads(100) >= 1);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let _guard = test_lock();
        let items: Vec<f64> = (0..997).map(|i| i as f64 * 0.1).collect();
        set_thread_count(1);
        let serial = par_map(&items, |&x| x.sin() + x.sqrt());
        for threads in [2, 4, 7] {
            set_thread_count(threads);
            let parallel = par_map(&items, |&x| x.sin() + x.sqrt());
            // Bit-identical, not approximately equal: chunking must not change
            // any per-item computation.
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "results differ at {threads} threads");
        }
        set_thread_count(0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn nested_par_map_runs_serially_in_workers() {
        let _guard = test_lock();
        set_thread_count(4);
        let outer: Vec<usize> = (0..8).collect();
        // Workers must carry the flag so nested calls don't fan out again.
        let flags = par_map(&outer, |_| IN_PAR_WORKER.with(|w| w.get()));
        assert!(flags.iter().all(|&in_worker| in_worker));
        // And a genuinely nested map still returns correct, ordered results.
        let nested = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..50).collect();
            par_map(&inner, move |&j| i * 100 + j).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer
            .iter()
            .map(|&i| (0..50).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(nested, expected);
        set_thread_count(0);
    }

    #[test]
    fn stateful_map_is_identical_across_thread_counts() {
        let _guard = test_lock();
        // Worker-private scratch (as used for register files) must not change
        // results, whatever the chunking.
        let run = || {
            par_map_range_with(503, Vec::<f64>::new, |scratch, i| {
                scratch.push(i as f64);
                (i as f64).sqrt() + scratch.len() as f64 * 0.0
            })
        };
        set_thread_count(1);
        let serial = run();
        for threads in [2, 5] {
            set_thread_count(threads);
            let parallel = run();
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "stateful results differ at {threads} threads");
        }
        set_thread_count(0);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
        assert_eq!(par_map_range(4, |i| i * i), vec![0, 1, 4, 9]);
    }
}
