//! Order-preserving parallel iteration for the evaluation hot paths.
//!
//! Accuracy evaluation scores each sampled point independently, which makes the
//! improve/Pareto loop embarrassingly parallel (cf. *Fast Mixed-Precision Real
//! Evaluation*). With the `parallel` feature (default) the helpers here fan work
//! out over `std::thread::scope` in contiguous chunks, one per worker, and
//! reassemble results **in input order** — so every caller observes exactly the
//! serial result, bit for bit, regardless of thread count. Without the feature
//! they degrade to plain serial iteration and the crate stays single-threaded.
//!
//! The worker count defaults to the machine's available parallelism and can be
//! overridden at runtime with [`set_thread_count`] or the `CHASSIS_THREADS`
//! environment variable (useful for benchmarking the serial/parallel paths
//! against each other in one process).

// Part of the `compile_many` call path: every failure must be a typed error
// or a transported panic payload, never an ad-hoc unwrap (see
// docs/RESILIENCE.md).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 means "not overridden": fall back to `CHASSIS_THREADS`, then to the
/// machine's available parallelism.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

#[cfg(feature = "parallel")]
std::thread_local! {
    /// True inside a `par_map` worker. Nested calls (a parallel corpus loop
    /// whose benchmarks each evaluate accuracy in parallel) run serially in
    /// their worker instead of oversubscribing the machine ~cores² threads.
    static IN_PAR_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Forces the worker count used by the `par_*` helpers; `0` restores the
/// default (the `CHASSIS_THREADS` environment variable, or all cores).
pub fn set_thread_count(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The worker count the `par_*` helpers will use for `len` items.
///
/// `CHASSIS_THREADS` is read and parsed once per process (the helpers sit on
/// the evaluation hot path, and the variable cannot meaningfully change
/// mid-run); [`set_thread_count`] remains live at every call.
pub fn effective_threads(len: usize) -> usize {
    static ENV_DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let configured = match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => *ENV_DEFAULT.get_or_init(|| {
            std::env::var("CHASSIS_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
                })
        }),
        n => n,
    };
    configured.min(len).max(1)
}

/// Maps `f` over the index range `0..len`, returning results in index order.
///
/// This is the core primitive: with the `parallel` feature, the range is split
/// into one contiguous sub-range per worker and results are concatenated in
/// range order, so the output is identical to `(0..len).map(f).collect()` —
/// no index buffer is materialized on either path.
pub fn par_map_range<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range_with(len, || (), |(), i| f(i))
}

/// Like [`par_map_range`], but each worker first builds private scratch state
/// with `init` and threads it through every index of its chunk.
///
/// This is how the evaluation hot loop shares a compiled
/// [`Program`](targets::compile::Program) across workers: the program (and the
/// resolved point columns) are borrowed immutably by every worker, while each
/// worker's register file is built once per chunk — not once per point — by
/// `init`. The state cannot influence results (it is scratch space), so the
/// output remains bit-identical to the serial path at any thread count.
#[cfg(feature = "parallel")]
pub fn par_map_range_with<S, R, I, F>(len: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let serial = |range: std::ops::Range<usize>| {
        let mut state = init();
        range.map(|i| f(&mut state, i)).collect::<Vec<R>>()
    };
    if len < 2 || IN_PAR_WORKER.with(std::cell::Cell::get) {
        return serial(0..len);
    }
    let threads = effective_threads(len);
    if threads <= 1 {
        return serial(0..len);
    }
    // Chaos harness: an armed abort degrades the fan-out to the serial path,
    // which is bit-identical by construction.
    if fault::point("par.spawn") {
        return serial(0..len);
    }
    let chunk_size = len.div_ceil(threads);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk_size)
            .map(|start| {
                let end = (start + chunk_size).min(len);
                scope.spawn(move || {
                    IN_PAR_WORKER.with(|w| w.set(true));
                    // Catch panics inside the worker so the *original* payload
                    // travels back to the calling thread (a bare join would
                    // lose it to a generic message at the `expect`, and an
                    // unjoined scope thread would abort the scope). The
                    // worker's partial results are discarded wholesale, so
                    // broken invariants cannot leak: AssertUnwindSafe is
                    // sound here.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut state = init();
                        (start..end).map(|i| f(&mut state, i)).collect::<Vec<R>>()
                    }))
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(results)) => out.extend(results),
                // First worker panic (in chunk order) wins; keep joining the
                // rest so every worker finishes before the payload resumes.
                Ok(Err(payload)) | Err(payload) => {
                    panicked.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        out
    })
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn par_map_range_with<S, R, I, F>(len: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let mut state = init();
    (0..len).map(|i| f(&mut state, i)).collect()
}

/// Like [`par_map_range_with`], but the unit of work is a *block* of
/// consecutive indices instead of one index: `fill(state, start, out)` must
/// fill `out[l]` with the result for index `start + l`.
///
/// This is the block evaluator's fan-out primitive: each worker builds its
/// scratch state (a columnar register file) once with `init`, then sweeps its
/// contiguous share of the range block by block, writing results straight
/// into its disjoint slice of the output — no per-point and no per-block
/// allocation in the steady state. Worker boundaries are always multiples of
/// `block`, so the sequence of blocks evaluated is identical at every thread
/// count; combined with a `fill` whose per-index results are
/// position-independent (the block engine is bit-identical at any width),
/// the output equals the serial sweep bit for bit.
#[cfg(feature = "parallel")]
pub fn par_map_blocks_with<S, R, I, F>(len: usize, block: usize, init: I, fill: F) -> Vec<R>
where
    R: Send + Clone + Default,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [R]) + Sync,
{
    let block = block.max(1);
    let mut out = vec![R::default(); len];
    let serial = |state: &mut S, base: usize, chunk: &mut [R]| {
        for (i, piece) in chunk.chunks_mut(block).enumerate() {
            fill(state, base + i * block, piece);
        }
    };
    if len == 0 {
        return out;
    }
    let n_blocks = len.div_ceil(block);
    if n_blocks < 2 || IN_PAR_WORKER.with(std::cell::Cell::get) {
        serial(&mut init(), 0, &mut out);
        return out;
    }
    let threads = effective_threads(n_blocks);
    if threads <= 1 {
        serial(&mut init(), 0, &mut out);
        return out;
    }
    // One contiguous, block-aligned span per worker.
    let span = n_blocks.div_ceil(threads) * block;
    let (init, serial) = (&init, &serial);
    std::thread::scope(|scope| {
        let mut rest: &mut [R] = &mut out;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = span.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            scope.spawn(move || {
                IN_PAR_WORKER.with(|w| w.set(true));
                serial(&mut init(), base, chunk);
            });
            base += take;
        }
    });
    out
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn par_map_blocks_with<S, R, I, F>(len: usize, block: usize, init: I, fill: F) -> Vec<R>
where
    R: Send + Clone + Default,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [R]) + Sync,
{
    let block = block.max(1);
    let mut out = vec![R::default(); len];
    let mut state = init();
    for (i, piece) in out.chunks_mut(block).enumerate() {
        fill(&mut state, i * block, piece);
    }
    out
}

/// Maps `f` over `items`, returning results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Serializes tests that mutate the global thread-count override; shared with
/// other in-crate test modules so they cannot race each other.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_override_is_respected() {
        let _guard = test_lock();
        set_thread_count(3);
        assert_eq!(effective_threads(100), 3);
        assert_eq!(effective_threads(2), 2);
        set_thread_count(0);
        assert!(effective_threads(100) >= 1);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let _guard = test_lock();
        let items: Vec<f64> = (0..997).map(|i| i as f64 * 0.1).collect();
        set_thread_count(1);
        let serial = par_map(&items, |&x| x.sin() + x.sqrt());
        for threads in [2, 4, 7] {
            set_thread_count(threads);
            let parallel = par_map(&items, |&x| x.sin() + x.sqrt());
            // Bit-identical, not approximately equal: chunking must not change
            // any per-item computation.
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "results differ at {threads} threads");
        }
        set_thread_count(0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn nested_par_map_runs_serially_in_workers() {
        let _guard = test_lock();
        set_thread_count(4);
        let outer: Vec<usize> = (0..8).collect();
        // Workers must carry the flag so nested calls don't fan out again.
        let flags = par_map(&outer, |_| IN_PAR_WORKER.with(std::cell::Cell::get));
        assert!(flags.iter().all(|&in_worker| in_worker));
        // And a genuinely nested map still returns correct, ordered results.
        let nested = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..50).collect();
            par_map(&inner, move |&j| i * 100 + j).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer
            .iter()
            .map(|&i| (0..50).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(nested, expected);
        set_thread_count(0);
    }

    #[test]
    fn stateful_map_is_identical_across_thread_counts() {
        let _guard = test_lock();
        // Worker-private scratch (as used for register files) must not change
        // results, whatever the chunking.
        let run = || {
            par_map_range_with(503, Vec::<f64>::new, |scratch, i| {
                scratch.push(i as f64);
                (i as f64).sqrt() + scratch.len() as f64 * 0.0
            })
        };
        set_thread_count(1);
        let serial = run();
        for threads in [2, 5] {
            set_thread_count(threads);
            let parallel = run();
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "stateful results differ at {threads} threads");
        }
        set_thread_count(0);
    }

    #[test]
    fn block_map_matches_index_map_at_every_thread_count() {
        let _guard = test_lock();
        // A length that is not a multiple of the block size, so the ragged
        // tail block is exercised at every worker split.
        let len = 509;
        let block = 16;
        let run = || {
            par_map_blocks_with(
                len,
                block,
                || (),
                |(), start, out| {
                    for (l, slot) in out.iter_mut().enumerate() {
                        *slot = ((start + l) as f64).sqrt() + start as f64 * 0.0;
                    }
                },
            )
        };
        let expected: Vec<f64> = (0..len).map(|i| (i as f64).sqrt()).collect();
        set_thread_count(1);
        let serial = run();
        assert_eq!(serial.len(), len);
        let same = serial
            .iter()
            .zip(&expected)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "serial block map diverges from the plain map");
        for threads in [2, 3, 8] {
            set_thread_count(threads);
            let parallel = run();
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "block results differ at {threads} threads");
        }
        set_thread_count(0);
    }

    #[test]
    fn block_map_sees_identical_block_starts_at_every_thread_count() {
        let _guard = test_lock();
        // Record each index's block start: worker splits must never move a
        // block boundary (that is what keeps block-sensitive state private).
        let run = || {
            par_map_blocks_with(
                100,
                8,
                || (),
                |(), start, out| {
                    out.fill(start);
                },
            )
        };
        set_thread_count(1);
        let serial = run();
        for threads in [2, 4, 7] {
            set_thread_count(threads);
            assert_eq!(serial, run(), "block starts moved at {threads} threads");
        }
        set_thread_count(0);
        // Blocks are exactly the serial chunking: 0,0,...,8,8,...,96,...
        assert!(serial.iter().enumerate().all(|(i, &s)| s == i / 8 * 8));
    }

    #[test]
    fn block_map_empty_and_tiny_inputs() {
        assert!(
            par_map_blocks_with(0, 64, || (), |(), _, out: &mut [f64]| out.fill(1.0)).is_empty()
        );
        let one = par_map_blocks_with(
            1,
            64,
            || (),
            |(), start, out: &mut [f64]| out.fill(start as f64 + 7.0),
        );
        assert_eq!(one, vec![7.0]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
        assert_eq!(par_map_range(4, |i| i * i), vec![0, 1, 4, 9]);
    }
}
