//! The public Chassis compiler API.
//!
//! [`Chassis::compile`] ties the whole pipeline together, mirroring Figure 1 of
//! the paper: sample inputs, lower the input expression, iterate instruction
//! selection guided by the heuristics, optionally infer regimes, and report the
//! Pareto-optimal implementations evaluated on held-out test points.

use crate::accuracy;
use crate::improve::{improve, Candidate, ImproveConfig};
use crate::isel::{InstructionSelector, IselConfig};
use crate::lower::{lower_fpcore, variable_types, LowerError};
use crate::regimes::infer_regimes;
use crate::sample::{SampleError, SampleSet, Sampler};
use fpcore::FPCore;
use targets::{program_cost, FloatExpr, Target};

/// Chassis configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Training points used to guide the search.
    pub train_points: usize,
    /// Held-out test points used for the reported accuracy.
    pub test_points: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Iterative-improvement settings.
    pub improve: ImproveConfig,
    /// Whether to run regime inference at the end.
    pub regimes: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            train_points: 24,
            test_points: 32,
            seed: 20250413,
            improve: ImproveConfig::default(),
            regimes: true,
        }
    }
}

impl Config {
    /// A faster configuration for large benchmark sweeps (fewer points, fewer
    /// iterations, smaller e-graphs).
    pub fn fast() -> Config {
        Config {
            train_points: 12,
            test_points: 16,
            improve: ImproveConfig {
                iterations: 2,
                candidates_per_iteration: 1,
                subexprs_per_candidate: 2,
                isel: IselConfig {
                    node_limit: 3_000,
                    iter_limit: 4,
                    max_candidates: 24,
                    ..IselConfig::default()
                },
                ..ImproveConfig::default()
            },
            ..Config::default()
        }
    }
}

/// Why compilation failed.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// Sampling could not find enough valid input points.
    Sampling(SampleError),
    /// The expression uses operators that cannot be implemented on the target,
    /// even after desugaring and instruction selection.
    Unsupported(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Sampling(e) => write!(f, "sampling failed: {e}"),
            CompileError::Unsupported(what) => write!(f, "cannot implement on this target: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SampleError> for CompileError {
    fn from(e: SampleError) -> Self {
        CompileError::Sampling(e)
    }
}

/// One output implementation (a point on the Pareto frontier).
#[derive(Clone, Debug)]
pub struct Implementation {
    /// The target-specific program.
    pub expr: FloatExpr,
    /// Human-readable rendering using the target's operator names.
    pub rendered: String,
    /// Estimated cost under the target cost model.
    pub cost: f64,
    /// Mean bits of error on the held-out test points.
    pub error_bits: f64,
    /// Accuracy in the paper's convention (`p −` mean bits of error).
    pub accuracy_bits: f64,
}

/// The result of compiling one FPCore on one target.
#[derive(Clone, Debug)]
pub struct CompilationResult {
    /// Pareto-optimal implementations, sorted by increasing cost.
    pub implementations: Vec<Implementation>,
    /// The naive direct lowering of the input (the "initial program" that
    /// speedups are measured against).
    pub initial: Implementation,
    /// The sampled points used during compilation.
    pub samples: SampleSet,
}

impl CompilationResult {
    /// The most accurate implementation.
    pub fn most_accurate(&self) -> &Implementation {
        self.implementations
            .iter()
            .min_by(|a, b| {
                a.error_bits
                    .partial_cmp(&b.error_bits)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one implementation")
    }

    /// The cheapest implementation.
    pub fn cheapest(&self) -> &Implementation {
        self.implementations
            .iter()
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one implementation")
    }

    /// Estimated speedup of the cheapest implementation over the initial program
    /// (cost ratio; the cost model is inversely related to speed).
    pub fn best_speedup(&self) -> f64 {
        self.initial.cost / self.cheapest().cost.max(f64::MIN_POSITIVE)
    }
}

/// The Chassis compiler for one target.
#[derive(Clone, Debug)]
pub struct Chassis {
    target: Target,
    config: Config,
}

impl Chassis {
    /// A compiler for `target` with the default configuration.
    pub fn new(target: Target) -> Chassis {
        Chassis {
            target,
            config: Config::default(),
        }
    }

    /// Overrides the configuration (builder style).
    pub fn with_config(mut self, config: Config) -> Chassis {
        self.config = config;
        self
    }

    /// The target this compiler produces code for.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Produces the initial program: the direct lowering when possible, otherwise
    /// the cheapest program found by instruction selection on the whole body
    /// (this is what makes expressions with, say, transcendental functions
    /// compilable to targets that lack them only if an equivalent form exists).
    fn initial_program(&self, core: &FPCore) -> Result<FloatExpr, CompileError> {
        match lower_fpcore(core, &self.target) {
            Ok(prog) => Ok(prog),
            Err(LowerError::UnsupportedOperator(op, ty)) => {
                let selector = InstructionSelector::new(&self.target, self.config.improve.isel);
                let vars = variable_types(core);
                let result = selector.run(&core.body, &vars, core.precision);
                result
                    .best
                    .get(&core.precision)
                    .cloned()
                    .ok_or_else(|| CompileError::Unsupported(format!("{op} at {ty}")))
            }
        }
    }

    /// Compiles an FPCore benchmark to a Pareto frontier of implementations.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Sampling`] when no valid inputs exist and
    /// [`CompileError::Unsupported`] when the expression cannot be expressed with
    /// the target's operators at all.
    pub fn compile(&self, core: &FPCore) -> Result<CompilationResult, CompileError> {
        let mut sampler = Sampler::new(self.config.seed);
        let samples = sampler.sample(core, self.config.train_points, self.config.test_points)?;
        let var_types = variable_types(core);

        let initial = self.initial_program(core)?;
        let mut frontier = improve(
            &self.target,
            initial.clone(),
            &samples,
            &var_types,
            &self.config.improve,
        );

        if self.config.regimes {
            if let Some((branched, cost, err)) = infer_regimes(&self.target, &frontier, &samples) {
                frontier.insert(
                    cost,
                    err,
                    Candidate {
                        expr: branched,
                        cost,
                        error_bits: err,
                    },
                );
            }
        }

        // Final evaluation on the held-out test points.
        let implementations: Vec<Implementation> = frontier
            .into_sorted()
            .into_iter()
            .map(|(cost, _, candidate)| self.describe(candidate.expr, cost, &samples))
            .collect();
        let initial_cost = program_cost(&self.target, &initial);
        let initial_impl = self.describe(initial, initial_cost, &samples);
        Ok(CompilationResult {
            implementations,
            initial: initial_impl,
            samples,
        })
    }

    fn describe(&self, expr: FloatExpr, cost: f64, samples: &SampleSet) -> Implementation {
        let (error_bits, accuracy_bits) = accuracy::evaluate_on_test(&self.target, &expr, samples);
        Implementation {
            rendered: expr.render(&self.target),
            expr,
            cost,
            error_bits,
            accuracy_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_fpcore;
    use targets::builtin;

    #[test]
    fn compiles_the_quickstart_example_end_to_end() {
        let core =
            parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 1e14)) (- (sqrt (+ x 1)) (sqrt x)))")
                .unwrap();
        let target = builtin::by_name("c99").unwrap();
        let result = Chassis::new(target)
            .with_config(Config::fast())
            .compile(&core)
            .unwrap();
        assert!(!result.implementations.is_empty());
        // The most accurate implementation should beat the naive lowering by a
        // wide margin on this classic cancellation example.
        assert!(
            result.most_accurate().error_bits + 5.0 < result.initial.error_bits,
            "expected accuracy improvement: best {:.1} vs initial {:.1}",
            result.most_accurate().error_bits,
            result.initial.error_bits
        );
        // Implementations are sorted by cost.
        let costs: Vec<f64> = result.implementations.iter().map(|i| i.cost).collect();
        let mut sorted = costs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(costs, sorted);
    }

    #[test]
    fn unsupported_expressions_are_reported() {
        // sin cannot be implemented on the bare Arith target.
        let core = parse_fpcore("(FPCore (x) (sin x))").unwrap();
        let target = builtin::by_name("arith").unwrap();
        let result = Chassis::new(target)
            .with_config(Config::fast())
            .compile(&core);
        assert!(matches!(result, Err(CompileError::Unsupported(_))));
    }

    #[test]
    fn impossible_preconditions_fail_sampling() {
        let core = parse_fpcore("(FPCore (x) :pre (< x (- x 1)) (+ x 1))").unwrap();
        let target = builtin::by_name("c99").unwrap();
        let result = Chassis::new(target)
            .with_config(Config::fast())
            .compile(&core);
        assert!(matches!(result, Err(CompileError::Sampling(_))));
    }
}
