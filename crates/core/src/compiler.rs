//! The compiler configuration and result types.
//!
//! The pipeline itself — sampling, lowering, the improvement loop, regime
//! inference, final evaluation — lives in [`crate::session`]: a
//! [`Session`](crate::session::Session) prepares each benchmark once
//! (target-independent sampling + Rival ground truth) and compiles the
//! prepared state for any number of targets. The pre-session one-shot
//! `Chassis` entry point went through a deprecation release as a shim over
//! that API and has been removed; see the README's migration note.

use crate::improve::ImproveConfig;
use crate::isel::IselConfig;
use crate::sample::{SampleError, SampleSet, TruthEngine};
use crate::session::SearchStats;
use targets::FloatExpr;

/// Chassis configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Training points used to guide the search.
    pub train_points: usize,
    /// Held-out test points used for the reported accuracy.
    pub test_points: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Iterative-improvement settings.
    pub improve: ImproveConfig,
    /// Whether to run regime inference at the end.
    pub regimes: bool,
    /// Which ground-truth engine the session's shared cache uses. Both
    /// engines produce bit-identical truths; [`TruthEngine::Adaptive`] (the
    /// default) re-evaluates only non-converged nodes across precision rungs
    /// and reuses converged subexpression truths across candidates.
    pub truth_engine: TruthEngine,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            train_points: 24,
            test_points: 32,
            seed: 20250413,
            improve: ImproveConfig::default(),
            regimes: true,
            truth_engine: TruthEngine::default(),
        }
    }
}

impl Config {
    /// A faster configuration for large benchmark sweeps (fewer points, fewer
    /// iterations, smaller e-graphs).
    pub fn fast() -> Config {
        Config {
            train_points: 12,
            test_points: 16,
            improve: ImproveConfig {
                iterations: 2,
                candidates_per_iteration: 1,
                subexprs_per_candidate: 2,
                isel: IselConfig {
                    node_limit: 3_000,
                    iter_limit: 4,
                    max_candidates: 24,
                    ..IselConfig::default()
                },
                ..ImproveConfig::default()
            },
            ..Config::default()
        }
    }

    /// Overrides the RNG seed (builder style) — what the bench binaries'
    /// `--seed` flag feeds.
    pub fn with_seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    /// A stable 128-bit fingerprint of every configuration field that can
    /// change a compilation *result*. The compilation service keys its
    /// content-addressed cache on this together with the benchmark's
    /// canonical text, the target fingerprint, and the seed.
    ///
    /// Two fields are deliberately excluded:
    ///
    /// * `seed` — it is its own key component (the service hashes it
    ///   separately, and callers reason about "same request, different seed"
    ///   directly);
    /// * `truth_engine` — the uniform and adaptive engines are bit-identical
    ///   by construction (gated by `search_throughput` and tests/search.rs),
    ///   so folding the engine choice in would only split the cache without
    ///   ever changing a result.
    ///
    /// The saturation *wall-clock* limits are included: a shorter time cap
    /// can genuinely cut a search differently, so two configs that differ
    /// there must not share cache entries (equal caps on machines of
    /// different speeds can still diverge — the cache trades that corner for
    /// hit rate, exactly as rerunning the compiler would).
    pub fn fingerprint(&self) -> u128 {
        let mut h = fpcore::hash::ContentHasher::new();
        h.u64(self.train_points as u64);
        h.u64(self.test_points as u64);
        h.u64(u64::from(self.regimes));
        h.u64(self.improve.iterations as u64);
        h.u64(self.improve.candidates_per_iteration as u64);
        h.u64(self.improve.subexprs_per_candidate as u64);
        h.u64(self.improve.isel.node_limit as u64);
        h.u64(self.improve.isel.iter_limit as u64);
        h.u64(self.improve.isel.time_limit.as_millis() as u64);
        h.u64(self.improve.isel.max_candidates as u64);
        h.u64(self.improve.cost_opp.node_limit as u64);
        h.u64(self.improve.cost_opp.iter_limit as u64);
        h.u64(self.improve.cost_opp.time_limit.as_millis() as u64);
        h.digest()
    }
}

/// The resource whose limit a [`CompileError::ResourceExhausted`] hit.
///
/// Resource exhaustion *inside* the search degrades gracefully — the
/// [`Budget`](crate::session::Budget) machinery returns the best frontier
/// found, saturation keeps the equalities discovered before the cap — so this
/// error only surfaces where there is nothing to degrade to: the limit fired
/// before any implementation existed at all.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ResourceLimit {
    /// The e-graph node cap (the paper's 8000-node limit).
    Nodes(usize),
    /// A wall-clock cap.
    WallClock(std::time::Duration),
}

impl std::fmt::Display for ResourceLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceLimit::Nodes(n) => write!(f, "{n} e-graph nodes"),
            ResourceLimit::WallClock(d) => write!(f, "{}ms wall clock", d.as_millis()),
        }
    }
}

/// A panic captured at a job boundary and converted into a typed error.
///
/// [`Session::compile_many`](crate::session::Session::compile_many) wraps
/// every (benchmark × target) job in `catch_unwind`, so a panic anywhere in
/// one job — including inside a [`chassis::par`](crate::par) worker thread,
/// whose payload is transported back to the job — fails that job with
/// [`CompileError::Internal`] while the rest of the corpus completes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobPanic {
    message: String,
}

impl JobPanic {
    /// A panic record with the given message.
    pub fn new(message: impl Into<String>) -> JobPanic {
        JobPanic {
            message: message.into(),
        }
    }

    /// Extracts the human-readable message from a `catch_unwind` payload
    /// (`&str` and `String` payloads — everything `panic!` produces — are
    /// recovered verbatim; anything else is labelled opaque).
    pub fn from_payload(payload: &(dyn std::any::Any + Send)) -> JobPanic {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        JobPanic { message }
    }

    /// The panic message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The coarse classification of a [`CompileError`], carried on
/// [`Progress::JobFailed`](crate::session::Progress) events (which must stay
/// `Copy`) and useful for aggregating failure counts over a corpus run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorKind {
    /// [`CompileError::Sampling`].
    Sampling,
    /// [`CompileError::Unsupported`].
    Unsupported,
    /// [`CompileError::ResourceExhausted`].
    ResourceExhausted,
    /// [`CompileError::GroundTruth`].
    GroundTruth,
    /// [`CompileError::Internal`].
    Internal,
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorKind::Sampling => "sampling",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::ResourceExhausted => "resource-exhausted",
            ErrorKind::GroundTruth => "ground-truth",
            ErrorKind::Internal => "internal",
        })
    }
}

/// Why compilation failed.
///
/// Every failure of the pipeline surfaces as one of these variants — never a
/// panic escaping [`Session::compile_many`](crate::session::Session) — and
/// each carries its cause through [`std::error::Error::source`], so a caller
/// (or a service wrapping the compiler) can both classify and explain:
///
/// * [`Sampling`](CompileError::Sampling) / [`GroundTruth`](CompileError::GroundTruth)
///   — the benchmark's domain, not the target, is the problem (degenerate
///   `:pre`, NaN-everywhere bodies, non-converging ground truth);
/// * [`Unsupported`](CompileError::Unsupported) — the (benchmark, target)
///   pair is genuinely unimplementable;
/// * [`ResourceExhausted`](CompileError::ResourceExhausted) — a limit fired
///   before any implementation existed (limits firing later degrade to the
///   best frontier found instead of erroring);
/// * [`Internal`](CompileError::Internal) — a bug, captured at the job
///   boundary.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// Sampling could not find enough valid input points.
    Sampling(SampleError),
    /// The expression uses operators that cannot be implemented on the target,
    /// even after desugaring and instruction selection.
    Unsupported(String),
    /// A resource limit fired before any implementation existed, leaving
    /// nothing to degrade to.
    ResourceExhausted {
        /// The phase that hit the limit.
        phase: crate::session::Phase,
        /// Which limit fired.
        limit: ResourceLimit,
    },
    /// Ground truth never converged: every sampled point that satisfied the
    /// precondition topped out Rival's precision ladder undecided.
    GroundTruth(rival::TruthError),
    /// A panic inside one compilation job, captured at the job boundary.
    Internal(JobPanic),
}

impl CompileError {
    /// The coarse [`ErrorKind`] of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            CompileError::Sampling(_) => ErrorKind::Sampling,
            CompileError::Unsupported(_) => ErrorKind::Unsupported,
            CompileError::ResourceExhausted { .. } => ErrorKind::ResourceExhausted,
            CompileError::GroundTruth(_) => ErrorKind::GroundTruth,
            CompileError::Internal(_) => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Sampling(e) => write!(f, "sampling failed: {e}"),
            CompileError::Unsupported(what) => write!(f, "cannot implement on this target: {what}"),
            CompileError::ResourceExhausted { phase, limit } => {
                write!(f, "{phase} exhausted its resource limit ({limit})")
            }
            CompileError::GroundTruth(e) => write!(f, "ground truth failed: {e}"),
            CompileError::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Sampling(e) => Some(e),
            CompileError::GroundTruth(e) => Some(e),
            CompileError::Internal(e) => Some(e),
            CompileError::Unsupported(_) | CompileError::ResourceExhausted { .. } => None,
        }
    }
}

impl From<SampleError> for CompileError {
    fn from(e: SampleError) -> Self {
        match e {
            // A sample set that failed *because ground truth never converged*
            // is a ground-truth failure, not a domain problem.
            SampleError::GroundTruth(t) => CompileError::GroundTruth(t),
            other => CompileError::Sampling(other),
        }
    }
}

/// One output implementation (a point on the Pareto frontier).
#[derive(Clone, Debug)]
pub struct Implementation {
    /// The target-specific program.
    pub expr: FloatExpr,
    /// Human-readable rendering using the target's operator names.
    pub rendered: String,
    /// Estimated cost under the target cost model.
    pub cost: f64,
    /// Mean bits of error on the held-out test points.
    pub error_bits: f64,
    /// Accuracy in the paper's convention (`p −` mean bits of error).
    pub accuracy_bits: f64,
}

/// The result of compiling one FPCore on one target.
#[derive(Clone, Debug)]
pub struct CompilationResult {
    /// Pareto-optimal implementations, sorted by increasing cost.
    pub implementations: Vec<Implementation>,
    /// The naive direct lowering of the input (the "initial program" that
    /// speedups are measured against).
    pub initial: Implementation,
    /// The sampled points used during compilation.
    pub samples: SampleSet,
    /// Per-phase wall-clock durations and search work counters for this
    /// compile call.
    pub stats: SearchStats,
}

impl CompilationResult {
    /// The most accurate implementation.
    ///
    /// The frontier is non-empty in practice — the initial program is inserted
    /// before the search begins — but a frontier can end up empty when every
    /// candidate (including the initial program) scored non-finite, since the
    /// Pareto frontier rejects non-finite points. In that case the initial
    /// implementation is returned rather than panicking.
    pub fn most_accurate(&self) -> &Implementation {
        self.implementations
            .iter()
            .min_by(|a, b| {
                a.error_bits
                    .partial_cmp(&b.error_bits)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(&self.initial)
    }

    /// The cheapest implementation. Falls back to the initial implementation
    /// on an empty frontier (see [`CompilationResult::most_accurate`]).
    pub fn cheapest(&self) -> &Implementation {
        self.implementations
            .iter()
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(&self.initial)
    }

    /// Estimated speedup of the cheapest implementation over the initial program
    /// (cost ratio; the cost model is inversely related to speed).
    pub fn best_speedup(&self) -> f64 {
        self.initial.cost / self.cheapest().cost.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use fpcore::parse_fpcore;
    use targets::builtin;

    #[test]
    fn compiles_the_quickstart_example_end_to_end() {
        let core =
            parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 1e14)) (- (sqrt (+ x 1)) (sqrt x)))")
                .unwrap();
        let target = builtin::by_name("c99").unwrap();
        let result = Session::new(Config::fast())
            .compile(&core, &target)
            .unwrap();
        assert!(!result.implementations.is_empty());
        // The most accurate implementation should beat the naive lowering by a
        // wide margin on this classic cancellation example.
        assert!(
            result.most_accurate().error_bits + 5.0 < result.initial.error_bits,
            "expected accuracy improvement: best {:.1} vs initial {:.1}",
            result.most_accurate().error_bits,
            result.initial.error_bits
        );
        // Implementations are sorted by cost.
        let costs: Vec<f64> = result.implementations.iter().map(|i| i.cost).collect();
        let mut sorted = costs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(costs, sorted);
        // The result carries its search statistics: the improve phase did
        // run, and its scored-candidate count includes at least the initial
        // program.
        assert!(result.stats.candidates_scored >= 1);
        assert!(result.stats.improve > std::time::Duration::ZERO);
    }

    #[test]
    fn unsupported_expressions_are_reported() {
        // sin cannot be implemented on the bare Arith target.
        let core = parse_fpcore("(FPCore (x) (sin x))").unwrap();
        let target = builtin::by_name("arith").unwrap();
        let result = Session::new(Config::fast()).compile(&core, &target);
        assert!(matches!(result, Err(CompileError::Unsupported(_))));
    }

    #[test]
    fn impossible_preconditions_fail_sampling() {
        let core = parse_fpcore("(FPCore (x) :pre (< x (- x 1)) (+ x 1))").unwrap();
        let target = builtin::by_name("c99").unwrap();
        let result = Session::new(Config::fast()).compile(&core, &target);
        assert!(matches!(result, Err(CompileError::Sampling(_))));
    }

    #[test]
    fn config_fingerprints_track_result_relevant_fields_only() {
        let base = Config::default();
        assert_eq!(base.fingerprint(), Config::default().fingerprint());
        assert_ne!(base.fingerprint(), Config::fast().fingerprint());
        // Seed and truth engine do not change results for a fixed key, so
        // they are keyed separately / excluded (see the method docs).
        assert_eq!(
            base.fingerprint(),
            Config::default().with_seed(999).fingerprint()
        );
        let adaptive_off = Config {
            truth_engine: crate::sample::TruthEngine::Uniform,
            ..Config::default()
        };
        assert_eq!(base.fingerprint(), adaptive_off.fingerprint());
        let mut fewer_iters = Config::default();
        fewer_iters.improve.iterations -= 1;
        assert_ne!(base.fingerprint(), fewer_iters.fingerprint());
    }

    #[test]
    fn frontier_accessors_fall_back_to_the_initial_on_an_empty_frontier() {
        // Manufacture the empty-frontier corner (every candidate scored
        // non-finite): the accessors must return the initial implementation
        // instead of panicking.
        let core = parse_fpcore("(FPCore (x) (+ x 1))").unwrap();
        let samples = crate::sample::Sampler::new(1).sample(&core, 4, 2).unwrap();
        let target = builtin::by_name("c99").unwrap();
        let expr = crate::lower::lower_fpcore(&core, &target).unwrap();
        let initial = Implementation {
            rendered: expr.render(&target),
            expr,
            cost: 3.0,
            error_bits: 0.5,
            accuracy_bits: 52.5,
        };
        let result = CompilationResult {
            implementations: Vec::new(),
            initial,
            samples,
            stats: SearchStats::default(),
        };
        assert_eq!(result.most_accurate().rendered, result.initial.rendered);
        assert_eq!(result.cheapest().cost, result.initial.cost);
        assert!((result.best_speedup() - 1.0).abs() < 1e-12);
    }
}
