//! Typed extraction (paper Section 5.1).
//!
//! After instruction selection modulo equivalence, the e-graph mixes real-number
//! e-nodes, floating-point e-nodes of several types, and ill-typed combinations.
//! Typed extraction computes, for every e-class and every floating-point type,
//! the lowest-cost *well-typed, fully floating-point* term of that type, ignoring
//! real-number e-nodes entirely. It also supports the multi-extraction used by
//! the iterative loop: every appropriately-typed e-node of a chosen e-class is
//! turned into a candidate, with its children filled in by the lowest-cost
//! representatives.

use crate::lang::ChassisNode;
use egraph::{Analysis, EGraph, Id};
use fpcore::{FpType, Symbol};
use std::collections::HashMap;
use targets::{FloatExpr, Target};

/// Per-(e-class, type) best cost and representative node.
#[derive(Clone, Debug)]
struct Best {
    cost: f64,
    node: ChassisNode,
}

/// The typed extractor.
pub struct TypedExtractor<'a, A: Analysis<ChassisNode>> {
    egraph: &'a EGraph<ChassisNode, A>,
    target: &'a Target,
    var_types: &'a HashMap<Symbol, FpType>,
    best: HashMap<(Id, FpType), Best>,
}

impl<'a, A: Analysis<ChassisNode>> TypedExtractor<'a, A> {
    /// Runs the fixed-point cost computation over the whole e-graph.
    ///
    /// `var_types` gives the representation of each free variable (from the
    /// FPCore argument list); a variable can be extracted at a different type
    /// only through an explicit cast operator of the target.
    pub fn new(
        egraph: &'a EGraph<ChassisNode, A>,
        target: &'a Target,
        var_types: &'a HashMap<Symbol, FpType>,
    ) -> Self {
        let mut extractor = TypedExtractor {
            egraph,
            target,
            var_types,
            best: HashMap::new(),
        };
        extractor.compute();
        extractor
    }

    fn compute(&mut self) {
        loop {
            let mut changed = false;
            for class in self.egraph.classes() {
                let id = self.egraph.find(class.id);
                for node in &class.nodes {
                    for (ty, cost) in self.node_costs(node) {
                        let better = match self.best.get(&(id, ty)) {
                            None => true,
                            Some(b) => cost < b.cost,
                        };
                        if better {
                            self.best.insert(
                                (id, ty),
                                Best {
                                    cost,
                                    node: node.clone(),
                                },
                            );
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The types at which this e-node can be extracted, with the corresponding
    /// total costs. Real operators and conditionals produce nothing.
    fn node_costs(&self, node: &ChassisNode) -> Vec<(FpType, f64)> {
        match node {
            ChassisNode::Num(_) => FpType::numeric()
                .into_iter()
                .map(|ty| (ty, self.target.literal_cost))
                .collect(),
            ChassisNode::Var(v) => match self.var_types.get(v) {
                Some(ty) => vec![(*ty, self.target.variable_cost)],
                None => vec![],
            },
            ChassisNode::Float(op_id, children) => {
                let op = self.target.operator(*op_id);
                let mut total = op.cost;
                for (child, ty) in children.iter().zip(&op.arg_types) {
                    match self.best.get(&(self.egraph.find(*child), *ty)) {
                        Some(b) => total += b.cost,
                        None => return vec![],
                    }
                }
                vec![(op.ret_type, total)]
            }
            ChassisNode::Real(_, _) | ChassisNode::If(_) => vec![],
        }
    }

    /// The lowest cost at which the class of `id` can be extracted at type `ty`.
    pub fn best_cost(&self, id: Id, ty: FpType) -> Option<f64> {
        self.best.get(&(self.egraph.find(id), ty)).map(|b| b.cost)
    }

    /// Extracts the lowest-cost program of type `ty` from the class of `id`.
    pub fn extract_best(&self, id: Id, ty: FpType) -> Option<FloatExpr> {
        let id = self.egraph.find(id);
        let best = self.best.get(&(id, ty))?;
        self.build(&best.node, ty)
    }

    /// Multi-extraction: one candidate per appropriately-typed e-node in the
    /// class of `id` (paper Section 5.2), children filled in with the lowest-cost
    /// representatives. The result is deduplicated.
    pub fn extract_all(&self, id: Id, ty: FpType) -> Vec<FloatExpr> {
        let id = self.egraph.find(id);
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for node in &self.egraph.class(id).nodes {
            let usable = self
                .node_costs(node)
                .iter()
                .any(|(node_ty, _)| *node_ty == ty);
            if !usable {
                continue;
            }
            if let Some(expr) = self.build(node, ty) {
                if !seen.contains(&expr) {
                    seen.push(expr.clone());
                    out.push(expr);
                }
            }
        }
        out
    }

    fn build(&self, node: &ChassisNode, ty: FpType) -> Option<FloatExpr> {
        match node {
            ChassisNode::Num(c) => Some(FloatExpr::literal(c.to_f64(), ty)),
            ChassisNode::Var(v) => {
                let declared = self.var_types.get(v)?;
                if *declared == ty {
                    Some(FloatExpr::Var(*v, ty))
                } else {
                    None
                }
            }
            ChassisNode::Float(op_id, children) => {
                let op = self.target.operator(*op_id);
                if op.ret_type != ty {
                    return None;
                }
                let mut args = Vec::with_capacity(children.len());
                for (child, arg_ty) in children.iter().zip(&op.arg_types) {
                    let best = self.best.get(&(self.egraph.find(*child), *arg_ty))?;
                    args.push(self.build(&best.node, *arg_ty)?);
                }
                Some(FloatExpr::Op(*op_id, args))
            }
            ChassisNode::Real(_, _) | ChassisNode::If(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{expr_to_rec, ChassisNode};
    use egraph::NoAnalysis;
    use fpcore::parse_expr;
    use targets::builtin;
    use targets::program_cost;

    type EG = EGraph<ChassisNode, NoAnalysis>;

    fn var_types(vars: &[(&str, FpType)]) -> HashMap<Symbol, FpType> {
        vars.iter().map(|(n, t)| (Symbol::new(n), *t)).collect()
    }

    #[test]
    fn real_only_graphs_extract_nothing() {
        let t = builtin::by_name("c99").unwrap();
        let mut eg = EG::default();
        let rec = expr_to_rec(&parse_expr("(+ x 1)").unwrap());
        let root = eg.add_expr(&rec);
        let vars = var_types(&[("x", FpType::Binary64)]);
        let ex = TypedExtractor::new(&eg, &t, &vars);
        assert_eq!(ex.best_cost(root, FpType::Binary64), None);
        assert!(ex.extract_best(root, FpType::Binary64).is_none());
    }

    #[test]
    fn float_nodes_extract_with_costs() {
        let t = builtin::by_name("c99").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        let mut eg = EG::default();
        let x = eg.add(ChassisNode::Var(Symbol::new("x")));
        let one = eg.add(ChassisNode::Num(fpcore::Constant::integer(1)));
        let sum = eg.add(ChassisNode::Float(add, vec![x, one]));
        let vars = var_types(&[("x", FpType::Binary64)]);
        let ex = TypedExtractor::new(&eg, &t, &vars);
        let cost = ex.best_cost(sum, FpType::Binary64).unwrap();
        let expr = ex.extract_best(sum, FpType::Binary64).unwrap();
        assert_eq!(cost, program_cost(&t, &expr));
        assert_eq!(
            ex.best_cost(sum, FpType::Binary32),
            None,
            "no f32 lowering exists"
        );
    }

    #[test]
    fn chooses_cheaper_equivalent_operator() {
        // On AVX, 1/x can be the exact division or the cheap rcp instruction; the
        // extractor must pick rcp for binary32.
        let t = builtin::by_name("avx").unwrap();
        let div32 = t.find_operator("/.f32").unwrap();
        let rcp = t.find_operator("rcp.f32").unwrap();
        let mut eg = EG::default();
        let one = eg.add(ChassisNode::Num(fpcore::Constant::integer(1)));
        let x = eg.add(ChassisNode::Var(Symbol::new("x")));
        let division = eg.add(ChassisNode::Float(div32, vec![one, x]));
        let reciprocal = eg.add(ChassisNode::Float(rcp, vec![x]));
        eg.union(division, reciprocal);
        eg.rebuild();
        let vars = var_types(&[("x", FpType::Binary32)]);
        let ex = TypedExtractor::new(&eg, &t, &vars);
        let best = ex.extract_best(division, FpType::Binary32).unwrap();
        assert!(best.render(&t).contains("rcp.f32"));
        // Multi-extraction surfaces both choices.
        let all = ex.extract_all(division, FpType::Binary32);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn mixed_type_extraction_requires_casts() {
        // A binary64 variable used by a binary32 operator is only extractable when
        // the target has a cast; AVX does.
        let t = builtin::by_name("avx").unwrap();
        let cast32 = t.find_operator("cast32.f64").unwrap();
        let rcp = t.find_operator("rcp.f32").unwrap();
        let mut eg = EG::default();
        let x = eg.add(ChassisNode::Var(Symbol::new("x")));
        let xf32 = eg.add(ChassisNode::Float(cast32, vec![x]));
        let r = eg.add(ChassisNode::Float(rcp, vec![xf32]));
        let vars = var_types(&[("x", FpType::Binary64)]);
        let ex = TypedExtractor::new(&eg, &t, &vars);
        let best = ex.extract_best(r, FpType::Binary32).unwrap();
        assert!(best.render(&t).contains("cast32"));
        // Without the cast node, a direct use would be ill-typed.
        let mut eg2 = EG::default();
        let x2 = eg2.add(ChassisNode::Var(Symbol::new("x")));
        let r2 = eg2.add(ChassisNode::Float(rcp, vec![x2]));
        let ex2 = TypedExtractor::new(&eg2, &t, &vars);
        assert!(ex2.extract_best(r2, FpType::Binary32).is_none());
    }

    #[test]
    fn cycles_from_unions_are_handled() {
        let t = builtin::by_name("c99").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        let mut eg = EG::default();
        let x = eg.add(ChassisNode::Var(Symbol::new("x")));
        let zero = eg.add(ChassisNode::Num(fpcore::Constant::integer(0)));
        let sum = eg.add(ChassisNode::Float(add, vec![x, zero]));
        eg.union(sum, x);
        eg.rebuild();
        let vars = var_types(&[("x", FpType::Binary64)]);
        let ex = TypedExtractor::new(&eg, &t, &vars);
        let best = ex.extract_best(sum, FpType::Binary64).unwrap();
        // The cheapest representative of the class is the bare variable.
        assert_eq!(best, FloatExpr::Var(Symbol::new("x"), FpType::Binary64));
    }
}
