//! Pareto frontier maintenance over (cost, error) pairs.
//!
//! Chassis keeps, at every step of the iterative loop, only the candidates that
//! are not dominated: a candidate is dominated when another candidate is at least
//! as fast *and* at least as accurate (and strictly better in one of the two).

/// A Pareto frontier of items scored by `(cost, error)`; both are minimized.
#[derive(Clone, Debug, Default)]
pub struct ParetoFrontier<T> {
    items: Vec<(f64, f64, T)>,
}

impl<T> ParetoFrontier<T> {
    /// An empty frontier.
    pub fn new() -> Self {
        ParetoFrontier { items: Vec::new() }
    }

    /// Number of non-dominated items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the frontier holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `(cost, error)` would be dominated by an existing item.
    pub fn is_dominated(&self, cost: f64, error: f64) -> bool {
        self.items
            .iter()
            .any(|(c, e, _)| *c <= cost && *e <= error && (*c < cost || *e < error))
    }

    /// Inserts an item, dropping any existing items it dominates. Returns `true`
    /// if the item was kept.
    ///
    /// Non-finite scores are rejected: a NaN-scored candidate compares neither
    /// dominated nor dominating, so it would accumulate on the frontier forever,
    /// and an infinite cost or error never belongs on a frontier both axes of
    /// which are minimized.
    pub fn insert(&mut self, cost: f64, error: f64, item: T) -> bool {
        if !cost.is_finite() || !error.is_finite() {
            return false;
        }
        if self.is_dominated(cost, error) {
            return false;
        }
        // An identical score is kept only if no equal point already exists
        // (avoids unbounded growth from duplicates).
        if self.items.iter().any(|(c, e, _)| *c == cost && *e == error) {
            return false;
        }
        self.items
            .retain(|(c, e, _)| !(cost <= *c && error <= *e && (cost < *c || error < *e)));
        self.items.push((cost, error, item));
        true
    }

    /// Iterates over `(cost, error, item)` in increasing cost order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, &T)> {
        let mut sorted: Vec<&(f64, f64, T)> = self.items.iter().collect();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        sorted.into_iter().map(|(c, e, t)| (*c, *e, t))
    }

    /// Consumes the frontier, returning items in increasing cost order.
    pub fn into_sorted(mut self) -> Vec<(f64, f64, T)> {
        self.items
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.items
    }

    /// The most accurate (lowest-error) item.
    pub fn most_accurate(&self) -> Option<(f64, f64, &T)> {
        self.items
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, e, t)| (*c, *e, t))
    }

    /// The cheapest (lowest-cost) item.
    pub fn cheapest(&self) -> Option<(f64, f64, &T)> {
        self.items
            .iter()
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, e, t)| (*c, *e, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_non_dominated_items() {
        let mut front = ParetoFrontier::new();
        assert!(front.insert(10.0, 5.0, "a"));
        assert!(front.insert(5.0, 10.0, "b"));
        // Dominated by "a" (same error, higher cost).
        assert!(!front.insert(12.0, 5.0, "c"));
        // Dominates "a": "a" should be evicted.
        assert!(front.insert(8.0, 4.0, "d"));
        assert_eq!(front.len(), 2);
        let labels: Vec<&&str> = front.iter().map(|(_, _, t)| t).collect();
        assert_eq!(labels, vec![&"b", &"d"]);
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut front = ParetoFrontier::new();
        assert!(front.insert(1.0, 1.0, 1));
        assert!(!front.insert(1.0, 1.0, 2));
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn extremes_are_accessible() {
        let mut front = ParetoFrontier::new();
        front.insert(10.0, 1.0, "accurate");
        front.insert(1.0, 10.0, "fast");
        front.insert(5.0, 5.0, "middle");
        assert_eq!(front.most_accurate().unwrap().2, &"accurate");
        assert_eq!(front.cheapest().unwrap().2, &"fast");
        assert_eq!(front.len(), 3);
        let sorted = front.into_sorted();
        assert_eq!(sorted[0].2, "fast");
        assert_eq!(sorted[2].2, "accurate");
    }

    #[test]
    fn non_finite_scores_are_rejected() {
        let mut front = ParetoFrontier::new();
        assert!(!front.insert(f64::NAN, 1.0, "nan-cost"));
        assert!(!front.insert(1.0, f64::NAN, "nan-error"));
        assert!(!front.insert(f64::NAN, f64::NAN, "nan-both"));
        assert!(!front.insert(f64::INFINITY, 1.0, "inf-cost"));
        assert!(!front.insert(1.0, f64::NEG_INFINITY, "inf-error"));
        assert!(front.is_empty());
        // Finite items are unaffected, and repeated NaN insertions cannot grow
        // the frontier.
        assert!(front.insert(1.0, 1.0, "finite"));
        for _ in 0..10 {
            assert!(!front.insert(f64::NAN, f64::NAN, "nan"));
        }
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut front = ParetoFrontier::new();
        for i in 0..10 {
            let cost = i as f64;
            let error = (10 - i) as f64;
            assert!(front.insert(cost, error, i));
        }
        assert_eq!(front.len(), 10);
        assert!(front.is_dominated(5.5, 5.5));
        assert!(!front.is_dominated(0.5, 9.7));
    }
}
