//! The cost-opportunity heuristic (paper Section 5.2, Figure 5).
//!
//! Cost opportunity predicts where rewriting could make a program *faster*: a
//! fast equality-saturation pass with only the simplifying rules (plus the
//! target's desugaring rules) computes the cheapest equivalent of every
//! subexpression; the opportunity of a node is the cost reduction of the node
//! minus the cost reductions already available to its children, so a node is not
//! credited for savings that belong to its arguments.

use crate::lang::{float_expr_to_rec, ChassisNode};
use crate::local_error::ScoredSubexpr;
use crate::rules;
use crate::typed_extract::TypedExtractor;
use egraph::{EGraph, Id, NoAnalysis, Runner, RunnerLimits};
use fpcore::{FpType, Symbol};
use std::collections::HashMap;
use std::time::Duration;
use targets::{program_cost, FloatExpr, Target};

/// Limits for the lightweight simplification pass.
#[derive(Clone, Copy, Debug)]
pub struct CostOppConfig {
    /// Node limit for the (small) e-graph.
    pub node_limit: usize,
    /// Iteration limit.
    pub iter_limit: usize,
    /// Wall-clock budget.
    pub time_limit: Duration,
}

impl Default for CostOppConfig {
    fn default() -> Self {
        CostOppConfig {
            node_limit: 2_000,
            iter_limit: 4,
            time_limit: Duration::from_millis(400),
        }
    }
}

fn collect_op_subexprs<'a>(
    expr: &'a FloatExpr,
    out: &mut Vec<(&'a FloatExpr, Vec<&'a FloatExpr>)>,
) {
    match expr {
        FloatExpr::Num(_, _) | FloatExpr::Var(_, _) => {}
        FloatExpr::Op(_, args) => {
            for a in args {
                collect_op_subexprs(a, out);
            }
            let children: Vec<&FloatExpr> = args
                .iter()
                .filter(|a| matches!(a, FloatExpr::Op(_, _)))
                .collect();
            out.push((expr, children));
        }
        FloatExpr::Cmp(_, a, b) => {
            collect_op_subexprs(a, out);
            collect_op_subexprs(b, out);
        }
        FloatExpr::If(c, t, e) => {
            collect_op_subexprs(c, out);
            collect_op_subexprs(t, out);
            collect_op_subexprs(e, out);
        }
    }
}

/// Computes the cost opportunity of every operator subexpression of `candidate`.
/// Entries are sorted by decreasing opportunity.
pub fn cost_opportunities(
    target: &Target,
    candidate: &FloatExpr,
    var_types: &HashMap<Symbol, FpType>,
    config: CostOppConfig,
) -> Vec<ScoredSubexpr> {
    // One e-graph seeded with every operator subexpression of the program, so the
    // simplification pass is shared across subexpressions.
    let mut subexprs: Vec<(&FloatExpr, Vec<&FloatExpr>)> = Vec::new();
    collect_op_subexprs(candidate, &mut subexprs);
    if subexprs.is_empty() {
        return Vec::new();
    }

    let mut egraph: EGraph<ChassisNode, NoAnalysis> = EGraph::default();
    let mut roots: Vec<Id> = Vec::with_capacity(subexprs.len());
    for (sub, _) in &subexprs {
        let rec = float_expr_to_rec(sub, target);
        roots.push(egraph.add_expr(&rec));
    }

    let mut rule_set = rules::simplifying_rules::<NoAnalysis>();
    rule_set.extend(crate::isel::desugaring_rules(target));
    // Strength-reduction shapes whose real-number form grows slightly but whose
    // lowered form does not (the paper's running example: x/y → x·rcp(y)).
    rule_set.push(rules::rule(
        "co-div-as-mul-recip",
        "(/ a b)",
        "(* a (/ 1 b))",
    ));
    let limits = RunnerLimits {
        iter_limit: config.iter_limit,
        node_limit: config.node_limit,
        time_limit: config.time_limit,
        ..RunnerLimits::default()
    };
    Runner::with_limits(limits).run(&mut egraph, &rule_set);

    let extractor = TypedExtractor::new(&egraph, target, var_types);

    // cost_delta(e) = cost(e) - cost(simplified e)
    let mut deltas: HashMap<*const FloatExpr, f64> = HashMap::new();
    for ((sub, _), root) in subexprs.iter().zip(&roots) {
        let ty = sub.result_type(target);
        let original = program_cost(target, sub);
        let simplified = extractor.best_cost(*root, ty).unwrap_or(original);
        deltas.insert(*sub as *const FloatExpr, (original - simplified).max(0.0));
    }

    let mut scored: Vec<ScoredSubexpr> = subexprs
        .iter()
        .map(|(sub, children)| {
            let own = deltas
                .get(&(*sub as *const FloatExpr))
                .copied()
                .unwrap_or(0.0);
            let child_sum: f64 = children
                .iter()
                .map(|c| {
                    deltas
                        .get(&(*c as *const FloatExpr))
                        .copied()
                        .unwrap_or(0.0)
                })
                .sum();
            ScoredSubexpr {
                expr: (*sub).clone(),
                score: (own - child_sum).max(0.0),
            }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_fpcore, variable_types};
    use fpcore::parse_fpcore;
    use targets::builtin;

    #[test]
    fn division_offers_the_opportunity_not_its_parent() {
        // The paper's running example adapted to sqrt(x/y) on AVX (binary32): the
        // division can become x * rcp(y), so the division carries the opportunity
        // while the enclosing square root — whose only savings come from that same
        // child rewrite — must not be credited for it.
        let t = builtin::by_name("avx").unwrap();
        let core = parse_fpcore(
            "(FPCore ((! :precision binary32 x) (! :precision binary32 y)) :precision binary32 (sqrt (/ x y)))",
        )
        .unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        let vars = variable_types(&core);
        let scored = cost_opportunities(&t, &prog, &vars, CostOppConfig::default());
        assert_eq!(scored.len(), 2);
        let div = scored
            .iter()
            .find(|s| s.expr.render(&t).starts_with("(/.f32"))
            .expect("division is scored");
        let sqrt = scored
            .iter()
            .find(|s| s.expr.render(&t).starts_with("(sqrt.f32"))
            .expect("sqrt is scored");
        assert!(div.score > 0.0, "x/y can be strength-reduced to x*rcp(y)");
        assert!(
            sqrt.score <= div.score,
            "the sqrt must not be credited for the division's savings (sqrt {}, div {})",
            sqrt.score,
            div.score
        );
    }

    #[test]
    fn already_optimal_programs_have_no_opportunity() {
        let t = builtin::by_name("c99").unwrap();
        let core = parse_fpcore("(FPCore (x y) (+ x y))").unwrap();
        let prog = lower_fpcore(&core, &t).unwrap();
        let vars = variable_types(&core);
        let scored = cost_opportunities(&t, &prog, &vars, CostOppConfig::default());
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].score, 0.0);
    }
}
