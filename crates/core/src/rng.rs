//! A small, deterministic pseudo-random number generator.
//!
//! The build environment has no registry access, so instead of the `rand` crate
//! the sampler uses this self-contained xoshiro256++ implementation (Blackman &
//! Vigna). Determinism requirements are stronger than `rand`'s: sampling derives
//! one independent stream per attempt index (see [`Rng::for_stream`]), so the
//! accepted point set is identical no matter how attempts are distributed across
//! threads.

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator seeded from a single `u64` (SplitMix64 expansion, as the
    /// xoshiro authors recommend).
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// An independent generator for sub-stream `stream` of `seed`. Distinct
    /// `(seed, stream)` pairs yield unrelated sequences, which lets parallel
    /// workers draw from disjoint streams deterministically.
    pub fn for_stream(seed: u64, stream: u64) -> Rng {
        // Mix the stream id through SplitMix64 before combining so that
        // consecutive stream ids do not produce correlated seeds.
        let mut sm = stream.wrapping_add(0x6a09_e667_f3bc_c909);
        let mixed = splitmix64(&mut sm);
        Rng::new(seed ^ mixed)
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, n)` (Lemire's multiply-shift reduction; the
    /// modulo bias is negligible for the small `n` used here).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(43);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn streams_are_independent() {
        let mut s0 = Rng::for_stream(7, 0);
        let mut s1 = Rng::for_stream(7, 1);
        let a: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_floats_stay_in_range() {
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            let x = rng.range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut rng = Rng::new(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.below(4) as usize] += 1;
        }
        for &count in &counts {
            assert!(
                (8_000..12_000).contains(&count),
                "skewed bucket: {counts:?}"
            );
        }
    }
}
