//! The session-based compilation API: prepare once, compile for many targets.
//!
//! The paper's whole point is that one real expression should be implemented
//! for *many* targets (its evaluation runs nine targets over one corpus), yet a
//! one-shot `compile(target, core)` entry point re-samples inputs and re-runs
//! the Rival ground-truth evaluator on every call — both target-independent,
//! and by far the most expensive non-search phases. This module separates the
//! two halves:
//!
//! * [`Session::new`] owns the configuration (and with it the RNG seed) plus a
//!   per-benchmark cache of prepared state;
//! * [`Session::prepare`] runs the target-independent phases — argument-type
//!   analysis, input sampling, Rival ground truth — exactly once per
//!   `(benchmark, seed)` and returns a cheaply cloneable [`Prepared`] handle;
//! * [`Prepared::compile`] runs the target-specific search (lowering, the
//!   improvement loop, regime inference) against the cached sample set;
//! * [`Session::compile_many`] fans `(benchmark × target)` jobs out over
//!   [`chassis::par`](crate::par), sharing prepared state per benchmark.
//!
//! Observability and control are threaded through the search with
//! [`SearchControl`]: a [`Progress`] callback receives structured events (phase
//! transitions, improve iterations, frontier admissions, regime inference) and
//! a [`Budget`] bounds the search by iterations and/or wall-clock time, in
//! which case the search degrades gracefully to the frontier found so far —
//! the frontier always contains at least the initial program.
//!
//! With the default (unlimited) budget every result is bit-identical to the
//! pre-session one-shot path at the same seed: preparation performs exactly
//! the sampling the old path performed inline, and the search itself is
//! deterministic given the samples.

// The corpus entry point must never die on one bad job: every failure is a
// typed `CompileError`, so ad-hoc unwraps are banned here (docs/RESILIENCE.md).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::compiler::{
    CompilationResult, CompileError, Config, ErrorKind, Implementation, JobPanic, ResourceLimit,
};
use crate::improve::{improve_with, Candidate};
use crate::isel::InstructionSelector;
use crate::lower::{lower_fpcore, variable_types, LowerError};
use crate::par;
use crate::regimes::infer_regimes_with;
use crate::sample::{GroundTruthCache, SampleSet, Sampler};
use fpcore::{FPCore, FpType, Symbol};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use targets::{program_cost, CompileOptions, FloatExpr, Target};

/// A shared, cheap cancellation signal for in-flight searches.
///
/// A token is an `Arc`'d atomic flag: clone it freely, hand one side to the
/// search via [`SearchControl::with_cancel`] and keep the other wherever the
/// cancel decision lives (a daemon watchdog, a ctrl-C handler, a dropped
/// client connection). Firing it is [`CancelToken::cancel`] — idempotent,
/// lock-free, callable from any thread.
///
/// The search checks the token at exactly the cut points the wall-clock
/// [`Budget`] already checks (improve iteration heads, per-candidate work
/// inside `par` workers, regime sweeps, the final-evaluation boundary), so a
/// cancelled search **degrades, never fails**: it returns the
/// initial-containing Pareto frontier found so far, exactly as an exhausted
/// budget does, and emits [`Progress::JobCancelled`] once on the way out. A
/// token that never fires is observationally inert — results are bit-identical
/// to a search run without one, at any thread count.
#[derive(Clone, Default, Debug)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token: every search holding it stops at its next cut point.
    /// Idempotent; callable from any thread.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

/// The phases of one compilation, reported through [`Progress`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Target-independent preparation: sampling and ground truth.
    Prepare,
    /// Producing the initial program for a target.
    Lowering,
    /// The iterative improvement loop.
    Improve,
    /// Regime inference over the finished frontier.
    Regimes,
    /// Scoring the frontier on the held-out test points.
    FinalEvaluation,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Phase::Prepare => "prepare",
            Phase::Lowering => "lowering",
            Phase::Improve => "improve",
            Phase::Regimes => "regimes",
            Phase::FinalEvaluation => "final evaluation",
        };
        f.write_str(name)
    }
}

/// A structured observability event emitted during compilation.
///
/// Events are delivered synchronously, on the thread doing the work, to the
/// callback installed with [`SearchControl::with_progress`]; under
/// [`Session::compile_many`] events from concurrent jobs interleave, so a
/// callback that aggregates (counters, channels) works better than one that
/// prints.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Progress {
    /// A compilation phase began.
    PhaseStarted {
        /// Which phase.
        phase: Phase,
    },
    /// A compilation phase finished.
    PhaseFinished {
        /// Which phase.
        phase: Phase,
        /// Wall-clock time the phase took.
        duration: Duration,
    },
    /// The improvement loop started an iteration.
    ImproveIteration {
        /// Zero-based iteration index.
        iteration: usize,
        /// Frontier size entering the iteration.
        frontier_size: usize,
    },
    /// A candidate was admitted to the Pareto frontier.
    FrontierPointAdmitted {
        /// Estimated cost of the admitted candidate.
        cost: f64,
        /// Mean bits of error of the admitted candidate (training points).
        error_bits: f64,
    },
    /// Regime inference found a worthwhile branched program.
    RegimesInferred {
        /// Estimated cost of the branched program.
        cost: f64,
        /// Mean bits of error of the branched program (training points).
        error_bits: f64,
    },
    /// The [`Budget`] ran out; the search stopped early with the frontier
    /// found so far (which always contains the initial program).
    BudgetExhausted {
        /// The phase that was cut short.
        phase: Phase,
        /// Completed improve iterations at the time of the cut.
        iterations_completed: usize,
    },
    /// Every final implementation's compiled program passed IR verification
    /// (`targets::analysis`), including in release builds where the
    /// per-compile debug hook is off. The register totals report what
    /// liveness-driven compaction saves on this result's programs.
    ProgramsVerified {
        /// Programs verified (the frontier plus the initial program).
        programs: usize,
        /// Aggregate register-slab height of the fresh compiles.
        regs: usize,
        /// Aggregate slab height after dead-code elimination + compaction.
        regs_compacted: usize,
    },
    /// One `(benchmark × target)` job under [`Session::compile_many`] failed
    /// with a typed error — including a panic caught and converted to
    /// [`CompileError::Internal`] — while the rest of the corpus continued.
    /// Emitted once per failed cell, after the fan-out completes; a benchmark
    /// whose *preparation* failed reports one event per target column.
    JobFailed {
        /// Index of the benchmark in the `cores` slice passed to
        /// `compile_many`.
        benchmark: usize,
        /// Index of the target in the `targets` slice.
        target: usize,
        /// Coarse classification of the failure (the full error lives in the
        /// returned grid).
        kind: ErrorKind,
    },
    /// The search's [`CancelToken`] fired: the search stopped at its next cut
    /// point and returned the initial-containing frontier found so far (the
    /// same degradation an exhausted [`Budget`] takes). Emitted once per
    /// cancelled `compile` call, just before it returns.
    JobCancelled,
}

/// Work and timing summary of one `compile` call, carried on
/// [`CompilationResult::stats`](crate::CompilationResult).
///
/// The per-phase durations are wall-clock times of the phases reported
/// through [`Progress::PhaseFinished`]; `saturation` and `candidates_scored`
/// aggregate the improve loop's inner work across all worker threads (so
/// under parallelism `saturation` can exceed `improve`); `truths` is the
/// ground-truth cache's work delta attributable to this call —
/// [`TruthStats::evals_saved`](crate::TruthStats::evals_saved) on it reports
/// how many node evaluations the mixed-precision engine avoided.
#[derive(Clone, Copy, Default, PartialEq, Debug)]
pub struct SearchStats {
    /// Wall-clock time of the lowering phase.
    pub lowering: Duration,
    /// Wall-clock time of the improvement loop.
    pub improve: Duration,
    /// Wall-clock time of regime inference (zero when disabled).
    pub regimes: Duration,
    /// Wall-clock time of final evaluation plus verification.
    pub final_evaluation: Duration,
    /// Total time inside instruction-selection saturation runs, summed
    /// across workers.
    pub saturation: Duration,
    /// Candidate programs scored on the training points.
    pub candidates_scored: usize,
    /// Jobs that ended in a typed [`CompileError`]. Always zero on a single
    /// `compile` call's stats (a failed call returns `Err`, not stats);
    /// meaningful on the corpus-wide sum built by [`SearchStats::aggregate`].
    pub jobs_failed: usize,
    /// Ground-truth cache work attributable to this call (shared caches
    /// subtract a snapshot taken when the call began).
    pub truths: crate::sample::TruthStats,
}

impl SearchStats {
    /// Sums this and another stats record field-wise.
    pub fn merged(&self, other: &SearchStats) -> SearchStats {
        SearchStats {
            lowering: self.lowering + other.lowering,
            improve: self.improve + other.improve,
            regimes: self.regimes + other.regimes,
            final_evaluation: self.final_evaluation + other.final_evaluation,
            saturation: self.saturation + other.saturation,
            candidates_scored: self.candidates_scored + other.candidates_scored,
            jobs_failed: self.jobs_failed + other.jobs_failed,
            truths: self.truths.merged(&other.truths),
        }
    }

    /// Corpus-wide summary of a [`Session::compile_many`] result grid: `Ok`
    /// cells contribute their per-job stats, `Err` cells count into
    /// [`jobs_failed`](SearchStats::jobs_failed).
    pub fn aggregate(grid: &[Vec<Result<CompilationResult, CompileError>>]) -> SearchStats {
        let mut total = SearchStats::default();
        for row in grid {
            for cell in row {
                match cell {
                    Ok(result) => total = total.merged(&result.stats),
                    Err(_) => total.jobs_failed += 1,
                }
            }
        }
        total
    }
}

/// A resource bound on one `compile` call.
///
/// The default budget is unlimited. A bounded search never fails: the
/// improvement loop and regime inference check the budget at their natural
/// cut points and return the best frontier found so far, which always
/// contains the initial program.
#[derive(Clone, Copy, Default, Debug)]
pub struct Budget {
    /// Cap on improve-loop iterations (`None` = the configured iteration
    /// count). `Some(0)` skips the loop entirely, keeping only the initial
    /// program.
    pub max_iterations: Option<usize>,
    /// Wall-clock cap for the whole `compile` call, measured from its start.
    pub max_duration: Option<Duration>,
}

impl Budget {
    /// No bound beyond the configured iteration count.
    pub const UNLIMITED: Budget = Budget {
        max_iterations: None,
        max_duration: None,
    };

    /// Caps the improvement loop at `n` iterations.
    pub fn iterations(n: usize) -> Budget {
        Budget {
            max_iterations: Some(n),
            ..Budget::UNLIMITED
        }
    }

    /// Caps the whole compilation at `d` of wall-clock time.
    ///
    /// Note that a wall-clock bound trades determinism for latency: whether
    /// the cut fires depends on machine speed, so two runs may return
    /// different (both valid) frontiers.
    pub fn wall_clock(d: Duration) -> Budget {
        Budget {
            max_duration: Some(d),
            ..Budget::UNLIMITED
        }
    }

    /// Adds an iteration cap to this budget.
    pub fn with_iterations(mut self, n: usize) -> Budget {
        self.max_iterations = Some(n);
        self
    }

    /// Adds a wall-clock cap to this budget.
    pub fn with_wall_clock(mut self, d: Duration) -> Budget {
        self.max_duration = Some(d);
        self
    }

    /// True when no cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_iterations.is_none() && self.max_duration.is_none()
    }
}

/// The type of a [`Progress`] observer callback.
pub type ProgressFn<'a> = dyn Fn(&Progress) + Sync + 'a;

/// Per-call observability and control: an optional [`Progress`] observer plus
/// a [`Budget`]. The default is silent and unlimited — exactly the classic
/// search.
#[derive(Clone, Copy, Default)]
pub struct SearchControl<'a> {
    progress: Option<&'a ProgressFn<'a>>,
    budget: Budget,
    options: CompileOptions,
    cancel: Option<&'a CancelToken>,
}

impl<'a> SearchControl<'a> {
    /// Silent, unlimited control (same as `Default`).
    pub fn new() -> SearchControl<'a> {
        SearchControl::default()
    }

    /// Installs a progress observer.
    pub fn with_progress(mut self, observer: &'a ProgressFn<'a>) -> SearchControl<'a> {
        self.progress = Some(observer);
        self
    }

    /// Installs a budget.
    pub fn with_budget(mut self, budget: Budget) -> SearchControl<'a> {
        self.budget = budget;
        self
    }

    /// Installs the [`CompileOptions`] used everywhere the search compiles an
    /// expression to an executable program (candidate scoring, regime error
    /// sweeps, final evaluation). All options preserve bit identity of
    /// evaluation results; [`VerifyMode::Never`](targets::VerifyMode) also
    /// skips the final-implementation verification pass.
    pub fn with_compile_options(mut self, options: CompileOptions) -> SearchControl<'a> {
        self.options = options;
        self
    }

    /// Attaches a cancellation token: the search stops at its next budget cut
    /// point once the token fires and returns the frontier found so far. A
    /// token that never fires changes nothing — results stay bit-identical.
    pub fn with_cancel(mut self, token: &'a CancelToken) -> SearchControl<'a> {
        self.cancel = Some(token);
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The configured compile options.
    pub fn compile_options(&self) -> CompileOptions {
        self.options
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&'a CancelToken> {
        self.cancel
    }
}

impl std::fmt::Debug for SearchControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchControl")
            .field("progress", &self.progress.map(|_| "<observer>"))
            .field("budget", &self.budget)
            .field("options", &self.options)
            .field("cancel", &self.cancel.map(CancelToken::is_cancelled))
            .finish()
    }
}

/// The live context of one `compile` call: the observer, the budget clock
/// (started when the call began), and the session's shared ground-truth cache.
///
/// [`improve_with`](crate::improve::improve_with()) and
/// [`infer_regimes_with`](crate::regimes::infer_regimes_with()) take this to
/// emit events and honour the budget; [`SearchCtx::detached`] provides the
/// silent unlimited context the classic entry points use.
pub struct SearchCtx<'a> {
    progress: Option<&'a ProgressFn<'a>>,
    deadline: Option<Instant>,
    cancel: Option<&'a CancelToken>,
    max_iterations: Option<usize>,
    truths: Option<GroundTruthCache>,
    options: CompileOptions,
    /// Wall-clock nanoseconds spent inside instruction-selection saturation
    /// runs, summed across workers (hence atomic: the improve loop saturates
    /// candidate batches in parallel).
    saturation_nanos: AtomicU64,
    /// Candidate programs scored on the training points.
    candidates_scored: AtomicUsize,
}

impl<'a> SearchCtx<'a> {
    /// Starts the budget clock for one compile call.
    pub fn start(ctl: &SearchControl<'a>, truths: Option<GroundTruthCache>) -> SearchCtx<'a> {
        SearchCtx {
            progress: ctl.progress,
            // A cap too large for the clock (e.g. Duration::MAX as
            // "effectively unlimited") is no deadline, not a panic.
            deadline: ctl
                .budget
                .max_duration
                .and_then(|d| Instant::now().checked_add(d)),
            cancel: ctl.cancel,
            max_iterations: ctl.budget.max_iterations,
            truths,
            options: ctl.options,
            saturation_nanos: AtomicU64::new(0),
            candidates_scored: AtomicUsize::new(0),
        }
    }

    /// A silent, unlimited context with no shared ground-truth cache.
    pub fn detached() -> SearchCtx<'static> {
        SearchCtx {
            progress: None,
            deadline: None,
            cancel: None,
            max_iterations: None,
            truths: None,
            options: CompileOptions::default(),
            saturation_nanos: AtomicU64::new(0),
            candidates_scored: AtomicUsize::new(0),
        }
    }

    /// Delivers one event to the observer, if any.
    pub fn emit(&self, event: Progress) {
        if let Some(observer) = self.progress {
            observer(&event);
        }
    }

    /// True once the wall-clock budget has run out *or* the attached
    /// [`CancelToken`] has fired. Every budget cut point in the search polls
    /// this, which is what gives cancellation the exact degradation semantics
    /// of budget exhaustion with no extra checks at the sites.
    pub fn out_of_time(&self) -> bool {
        self.cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True once the attached [`CancelToken`] (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// True when the budget forbids starting improve iteration `iteration`
    /// (zero-based).
    pub fn iteration_barred(&self, iteration: usize) -> bool {
        self.max_iterations.is_some_and(|m| iteration >= m)
    }

    /// The session-shared Rival ground-truth cache, if compiling under one.
    pub fn truths(&self) -> Option<&GroundTruthCache> {
        self.truths.as_ref()
    }

    /// The [`CompileOptions`] every search-internal compilation should use.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Records wall-clock time spent in one instruction-selection saturation
    /// run (callable from any worker thread).
    pub fn note_saturation(&self, elapsed: Duration) {
        self.saturation_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records `n` candidate programs scored on the training points.
    pub fn note_scored(&self, n: usize) {
        self.candidates_scored.fetch_add(n, Ordering::Relaxed);
    }

    /// Total wall-clock time spent in saturation runs so far (summed across
    /// workers, so under parallelism this can exceed elapsed time).
    pub fn saturation_time(&self) -> Duration {
        Duration::from_nanos(self.saturation_nanos.load(Ordering::Relaxed))
    }

    /// Candidate programs scored on the training points so far.
    pub fn candidates_scored(&self) -> usize {
        self.candidates_scored.load(Ordering::Relaxed)
    }
}

struct PreparedInner {
    core: FPCore,
    config: Config,
    var_types: HashMap<Symbol, FpType>,
    samples: SampleSet,
    /// Rival ground truths of candidate subexpressions over the training
    /// points, shared by every target compiled from this preparation (the
    /// local-error heuristic re-requests the same real subexpressions for
    /// every target and every improve iteration).
    truths: GroundTruthCache,
}

/// The target-independent state of one benchmark under one session: the parsed
/// analysis, the sampled points, and their Rival ground truths.
///
/// `Prepared` is a cheap (`Arc`) handle: clone it freely, share it across
/// threads, and call [`Prepared::compile`] once per target. Every compile
/// call reuses the same samples and ground truths — nothing target-independent
/// is recomputed.
#[derive(Clone)]
pub struct Prepared {
    inner: Arc<PreparedInner>,
}

impl Prepared {
    /// The benchmark this preparation belongs to.
    pub fn core(&self) -> &FPCore {
        &self.inner.core
    }

    /// The session configuration the preparation was made under.
    pub fn config(&self) -> &Config {
        &self.inner.config
    }

    /// The sampled train/test points with their ground truths.
    pub fn samples(&self) -> &SampleSet {
        &self.inner.samples
    }

    /// Compiles this prepared benchmark for one target with default controls.
    ///
    /// Bit-identical to the one-shot path at the same seed: given the same
    /// samples the search is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Unsupported`] when the expression cannot be
    /// expressed with the target's operators at all.
    pub fn compile(&self, target: &Target) -> Result<CompilationResult, CompileError> {
        self.compile_with(target, &SearchControl::default())
    }

    /// Compiles this prepared benchmark for one target, reporting [`Progress`]
    /// and honouring the [`Budget`] in `ctl`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Unsupported`] when the expression cannot be
    /// expressed with the target's operators at all. An exhausted budget is
    /// not an error: the result holds the frontier found so far (at minimum
    /// the initial program).
    pub fn compile_with(
        &self,
        target: &Target,
        ctl: &SearchControl,
    ) -> Result<CompilationResult, CompileError> {
        let inner = &*self.inner;
        let mut ctx = SearchCtx::start(ctl, Some(inner.truths.clone()));
        // Chaos harness: an armed abort spends the job's wall-clock budget up
        // front, so the search degrades exactly as an exhausted `Budget` does
        // — the frontier keeps (at least) the initial program.
        if fault::point("session.compile") {
            ctx.deadline = Some(Instant::now());
        }
        let ctx = ctx;
        // The cache is shared by every compile of this preparation, so the
        // delta is this call's attribution; under `compile_many` concurrent
        // jobs overlap and the split between them is approximate.
        let truths_before = inner.truths.truth_stats();

        ctx.emit(Progress::PhaseStarted {
            phase: Phase::Lowering,
        });
        let phase_started = Instant::now();
        let initial = initial_program(target, &inner.core, &inner.config)?;
        let lowering_time = phase_started.elapsed();
        ctx.emit(Progress::PhaseFinished {
            phase: Phase::Lowering,
            duration: lowering_time,
        });

        ctx.emit(Progress::PhaseStarted {
            phase: Phase::Improve,
        });
        let phase_started = Instant::now();
        let mut frontier = improve_with(
            target,
            initial.clone(),
            &inner.samples,
            &inner.var_types,
            &inner.config.improve,
            &ctx,
        );
        let improve_time = phase_started.elapsed();
        ctx.emit(Progress::PhaseFinished {
            phase: Phase::Improve,
            duration: improve_time,
        });

        let mut regimes_time = Duration::ZERO;
        if inner.config.regimes {
            ctx.emit(Progress::PhaseStarted {
                phase: Phase::Regimes,
            });
            let phase_started = Instant::now();
            if let Some((branched, cost, err)) =
                infer_regimes_with(target, &frontier, &inner.samples, &ctx)
            {
                ctx.emit(Progress::RegimesInferred {
                    cost,
                    error_bits: err,
                });
                frontier.insert(
                    cost,
                    err,
                    Candidate {
                        expr: branched,
                        cost,
                        error_bits: err,
                    },
                );
            }
            regimes_time = phase_started.elapsed();
            ctx.emit(Progress::PhaseFinished {
                phase: Phase::Regimes,
                duration: regimes_time,
            });
        }

        // Final evaluation on the held-out test points, one frontier program
        // per worker (scoring compiles and sweeps the test batch; results are
        // bit-identical at any thread count).
        ctx.emit(Progress::PhaseStarted {
            phase: Phase::FinalEvaluation,
        });
        let phase_started = Instant::now();
        let options = *ctx.options();
        let initial_cost = program_cost(target, &initial);
        // The final-evaluation cut point: a search cancelled by this boundary
        // collapses the frontier to the initial program so only one scoring
        // pass stands between the cancel and the worker being free. (A plain
        // budget deadline does not cut here — final evaluation is what turns
        // a frontier into a result, and its cost is small next to the search.)
        let finals: Vec<(f64, FloatExpr)> = if ctx.cancelled() {
            vec![(initial_cost, initial.clone())]
        } else {
            frontier
                .into_sorted()
                .into_iter()
                .map(|(cost, _, candidate)| (cost, candidate.expr))
                .collect()
        };
        let implementations: Vec<Implementation> = par::par_map(&finals, |(cost, expr)| {
            describe(target, expr.clone(), *cost, &inner.samples, &options)
        });
        let initial_impl = describe(target, initial, initial_cost, &inner.samples, &options);

        // Verify every program this result hands out (the debug hook inside
        // `targets::compile` covers debug builds; this covers release too,
        // once per final implementation rather than per search candidate).
        // `VerifyMode::Never` opts out; the default and `Always` both verify
        // here because these are the programs callers ship.
        if options.verify != targets::VerifyMode::Never {
            let all: Vec<&Implementation> = implementations
                .iter()
                .chain(std::iter::once(&initial_impl))
                .collect();
            let slabs: Vec<Result<(usize, usize), CompileError>> = par::par_map(&all, |imp| {
                let program = targets::compile(target, &imp.expr);
                let violations = targets::analysis::verify_with_target(
                    &program,
                    target,
                    targets::analysis::Mode::Ssa,
                );
                // A verifier violation is a compiler bug, not a property of
                // the input: report it as an internal error on this job so
                // the rest of a corpus run survives it.
                if !violations.is_empty() {
                    return Err(CompileError::Internal(JobPanic::new(format!(
                        "compiled implementation failed IR verification on target {}:\n{}",
                        target.name,
                        targets::analysis::verify::render(&violations)
                    ))));
                }
                let (_, stats) = targets::optimize(&program);
                Ok((stats.regs_before, stats.regs_after))
            });
            let mut verified = Vec::with_capacity(slabs.len());
            for slab in slabs {
                verified.push(slab?);
            }
            ctx.emit(Progress::ProgramsVerified {
                programs: verified.len(),
                regs: verified.iter().map(|(before, _)| before).sum(),
                regs_compacted: verified.iter().map(|(_, after)| after).sum(),
            });
        }
        let final_time = phase_started.elapsed();
        ctx.emit(Progress::PhaseFinished {
            phase: Phase::FinalEvaluation,
            duration: final_time,
        });

        let stats = SearchStats {
            lowering: lowering_time,
            improve: improve_time,
            regimes: regimes_time,
            final_evaluation: final_time,
            saturation: ctx.saturation_time(),
            candidates_scored: ctx.candidates_scored(),
            jobs_failed: 0,
            truths: inner.truths.truth_stats().since(&truths_before),
        };
        if ctx.cancelled() {
            ctx.emit(Progress::JobCancelled);
        }
        Ok(CompilationResult {
            implementations,
            initial: initial_impl,
            samples: inner.samples.clone(),
            stats,
        })
    }
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("core", &self.inner.core.name)
            .field("train", &self.inner.samples.train_len())
            .field("test", &self.inner.samples.test_len())
            .finish_non_exhaustive()
    }
}

/// Produces the initial program: the direct lowering when possible, otherwise
/// the cheapest program found by instruction selection on the whole body (this
/// is what makes expressions with, say, transcendental functions compilable to
/// targets that lack them only if an equivalent form exists).
fn initial_program(
    target: &Target,
    core: &FPCore,
    config: &Config,
) -> Result<FloatExpr, CompileError> {
    match lower_fpcore(core, target) {
        Ok(prog) => Ok(prog),
        Err(LowerError::UnsupportedOperator(op, ty)) => {
            let selector = InstructionSelector::new(target, config.improve.isel);
            let vars = variable_types(core);
            let result = selector.run(&core.body, &vars, core.precision);
            if let Some(best) = result.best.get(&core.precision) {
                return Ok(best.clone());
            }
            // Distinguish "the search ran out of room" from "the target
            // genuinely cannot express this": a saturation run cut short by
            // its node or time cap might have found an equivalent form with
            // a bigger budget, so report the exhausted resource instead of a
            // flat `Unsupported`.
            match result.report.stop_reason {
                egraph::StopReason::NodeLimit => Err(CompileError::ResourceExhausted {
                    phase: Phase::Lowering,
                    limit: ResourceLimit::Nodes(config.improve.isel.node_limit),
                }),
                egraph::StopReason::TimeLimit => Err(CompileError::ResourceExhausted {
                    phase: Phase::Lowering,
                    limit: ResourceLimit::WallClock(config.improve.isel.time_limit),
                }),
                egraph::StopReason::Saturated | egraph::StopReason::IterLimit => {
                    Err(CompileError::Unsupported(format!("{op} at {ty}")))
                }
            }
        }
    }
}

/// Scores one output program on the held-out test points.
fn describe(
    target: &Target,
    expr: FloatExpr,
    cost: f64,
    samples: &SampleSet,
    options: &CompileOptions,
) -> Implementation {
    let (error_bits, accuracy_bits) =
        crate::accuracy::evaluate_on_test_with(target, &expr, samples, options);
    Implementation {
        rendered: expr.render(target),
        expr,
        cost,
        error_bits,
        accuracy_bits,
    }
}

/// A compilation session: one configuration (and RNG seed) plus a cache of
/// prepared benchmarks.
///
/// ```no_run
/// use chassis::{Config, Session};
/// use fpcore::parse_fpcore;
/// use targets::builtin;
///
/// let core = parse_fpcore("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
/// let session = Session::new(Config::default());
/// let prepared = session.prepare(&core).unwrap(); // samples + ground truth, once
/// for name in ["c99", "avx", "fdlibm"] {
///     let target = builtin::by_name(name).unwrap();
///     let result = prepared.compile(&target).unwrap(); // search only
///     println!("{name}: {} implementations", result.implementations.len());
/// }
/// ```
pub struct Session {
    config: Config,
    /// Prepared state per benchmark, keyed by the rendered FPCore (two
    /// textually identical benchmarks share one preparation).
    cache: Mutex<HashMap<String, Prepared>>,
    /// How many preparations actually ran (cache misses). Cache hits do not
    /// count — this is the number the "prepare once per benchmark" guarantee
    /// is stated (and tested) in terms of.
    prepares: AtomicUsize,
}

impl Session {
    /// A session with the given configuration.
    pub fn new(config: Config) -> Session {
        Session {
            config,
            cache: Mutex::new(HashMap::new()),
            prepares: AtomicUsize::new(0),
        }
    }

    /// A session with the default configuration.
    pub fn with_defaults() -> Session {
        Session::new(Config::default())
    }

    /// The session configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The RNG seed all sampling in this session derives from.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Runs the target-independent phases for one benchmark — argument-type
    /// analysis, input sampling, Rival ground truth — or returns the cached
    /// preparation if this session has seen the benchmark before.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Sampling`] when no valid inputs exist. Failed
    /// preparations are not cached; a retry samples again.
    pub fn prepare(&self, core: &FPCore) -> Result<Prepared, CompileError> {
        let key = core.to_string();
        // A poisoned cache lock means some prepare panicked *between* map
        // operations; the map itself is never left mid-edit, so recovering
        // the guard is sound (see docs/RESILIENCE.md).
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return Ok(hit.clone());
        }
        // The lock is not held while sampling: preparing different benchmarks
        // in parallel is the point of `compile_many`. Two racing prepares of
        // the *same* benchmark both run, but produce identical state (same
        // seed), so either may win the final insert.
        self.prepares.fetch_add(1, Ordering::Relaxed);
        let samples = Sampler::new(self.config.seed).sample(
            core,
            self.config.train_points,
            self.config.test_points,
        )?;
        let truths = GroundTruthCache::for_training_with(&samples, self.config.truth_engine);
        let prepared = Prepared {
            inner: Arc::new(PreparedInner {
                core: core.clone(),
                config: self.config.clone(),
                var_types: variable_types(core),
                samples,
                truths,
            }),
        };
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, prepared.clone());
        Ok(prepared)
    }

    /// How many preparations this session has actually run (cache misses).
    ///
    /// After `compile_many` over N distinct benchmarks this is exactly N, no
    /// matter how many targets were compiled.
    pub fn prepare_count(&self) -> usize {
        self.prepares.load(Ordering::Relaxed)
    }

    /// Convenience: prepare (or fetch the cached preparation) and compile for
    /// one target.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from either phase.
    pub fn compile(
        &self,
        core: &FPCore,
        target: &Target,
    ) -> Result<CompilationResult, CompileError> {
        self.prepare(core)?.compile(target)
    }

    /// Compiles every benchmark for every target, preparing each benchmark
    /// exactly once, with default controls. See [`Session::compile_many_with`].
    pub fn compile_many(
        &self,
        cores: &[FPCore],
        targets: &[Target],
    ) -> Vec<Vec<Result<CompilationResult, CompileError>>> {
        self.compile_many_with(cores, targets, &SearchControl::default())
    }

    /// Compiles every benchmark for every target: the corpus entry point.
    ///
    /// Benchmarks are first prepared in parallel (once each — sampling and
    /// ground truth never run per target), then the `(benchmark × target)`
    /// compile jobs fan out over [`chassis::par`](crate::par) with the
    /// prepared state shared per benchmark. `ctl` applies to every job:
    /// the budget bounds each compile individually, and progress events from
    /// concurrent jobs interleave on the observer.
    ///
    /// Returns one row per benchmark (in input order), each with one result
    /// per target (in input order). A benchmark whose preparation failed
    /// yields its sampling error in every column.
    ///
    /// Every job — preparation and compilation alike — runs under a panic
    /// boundary: a panic in one job becomes [`CompileError::Internal`] in
    /// that job's cells while the rest of the corpus completes. Each failed
    /// cell additionally reports a [`Progress::JobFailed`] event to the
    /// observer, and [`SearchStats::aggregate`] sums the grid into a
    /// corpus-wide summary.
    pub fn compile_many_with(
        &self,
        cores: &[FPCore],
        targets: &[Target],
        ctl: &SearchControl,
    ) -> Vec<Vec<Result<CompilationResult, CompileError>>> {
        // Phase 1: target-independent preparation, parallel across benchmarks.
        let prepared: Vec<Result<Prepared, CompileError>> =
            par::par_map(cores, |core| catch_job(|| self.prepare(core)));

        // Phase 2: fan (benchmark, target) jobs out over the worker pool; the
        // Arc-shared prepared state costs nothing to hand to each job.
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        for (b, prep) in prepared.iter().enumerate() {
            if prep.is_ok() {
                for t in 0..targets.len() {
                    jobs.push((b, t));
                }
            }
        }
        let outcomes = par::par_map(&jobs, |&(b, t)| {
            catch_job(|| match prepared[b].as_ref() {
                Ok(prep) => prep.compile_with(&targets[t], ctl),
                // Unreachable: only prepared benchmarks are scheduled.
                Err(e) => Err(e.clone()),
            })
        });

        // Reassemble rows in (benchmark, target) order.
        let mut outcomes = outcomes.into_iter();
        let grid: Vec<Vec<Result<CompilationResult, CompileError>>> = prepared
            .into_iter()
            .map(|prep| match prep {
                Ok(_) => (0..targets.len())
                    .map(|_| {
                        outcomes.next().unwrap_or_else(|| {
                            // Unreachable: par_map returns one outcome per job.
                            Err(CompileError::Internal(JobPanic::new(
                                "corpus fan-out lost a job outcome",
                            )))
                        })
                    })
                    .collect(),
                Err(e) => targets.iter().map(|_| Err(e.clone())).collect(),
            })
            .collect();

        // Report each failed cell to the observer, after the fan-out so the
        // events arrive in deterministic (benchmark, target) order.
        if let Some(observer) = ctl.progress {
            for (b, row) in grid.iter().enumerate() {
                for (t, cell) in row.iter().enumerate() {
                    if let Err(e) = cell {
                        observer(&Progress::JobFailed {
                            benchmark: b,
                            target: t,
                            kind: e.kind(),
                        });
                    }
                }
            }
        }
        grid
    }
}

/// Runs one corpus job behind a panic boundary: an unwind becomes
/// [`CompileError::Internal`] carrying the panic payload's message, so one
/// crashing job cannot take down a corpus run.
fn catch_job<R>(job: impl FnOnce() -> Result<R, CompileError>) -> Result<R, CompileError> {
    // AssertUnwindSafe: on a panic the job's partial state is discarded
    // wholesale and the shared caches recover from lock poisoning (see
    // `GroundTruthCache` and `Session::prepare`), so no broken invariant
    // outlives the catch.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
        Ok(outcome) => outcome,
        Err(payload) => Err(CompileError::Internal(JobPanic::from_payload(
            payload.as_ref(),
        ))),
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("prepared", &self.prepare_count())
            .finish_non_exhaustive()
    }
}
