//! Workspace facade crate: re-exports every crate of the Chassis reproduction so
//! examples and integration tests can use a single dependency.

pub use benchsuite;
pub use chassis;
pub use egraph;
pub use fault;
pub use fpcore;
pub use rival;
pub use service;
pub use targets;
pub use vecmath;
